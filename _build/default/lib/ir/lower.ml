(* Lowering: operator definition + layouts + loop schedule -> program.

   This is the compilation pass described in Section 6 of the paper.  The
   loop nest of an operator mirrors its *output physical layout* one-to-one:
   given output layout S_Y, the spatial loops L' iterate over the physical
   dimensions, the logical output coordinates are recovered as S_Y^{-1}(L'),
   and every access to a tensor X with layout S_X is rewritten to
   S_X(S_Y^{-1}(L')).  Sliding-window accesses into unfolded tensors are
   rewritten with Eq. (1) *before* the inverse substitution, and the
   range-aware simplifier collapses the resulting div/mod chains.

   Elementwise consumers can be fused into the producer's loop nest when
   their output layout carries the same primitive sequence — the
   fusion-legality rule of Section 4.2; [Lower_error] is raised otherwise,
   which the graph layer uses to detect fusion conflicts. *)

module Shape = Alt_tensor.Shape
module Var = Alt_tensor.Var
module Ixexpr = Alt_tensor.Ixexpr
module Layout = Alt_tensor.Layout

exception Lower_error of string

let err fmt = Fmt.kstr (fun s -> raise (Lower_error s)) fmt

type fused = { fop : Opdef.t; fout_layout : Layout.t }

(* ------------------------------------------------------------------ *)
(* pexpr helpers                                                      *)
(* ------------------------------------------------------------------ *)

let rec pexpr_of_sexpr ~(load : string -> Ixexpr.t array -> Program.access) =
  function
  | Sexpr.Load (n, idx) -> Program.Pload (load n idx)
  | Sexpr.Fconst f -> Program.Pconst f
  | Sexpr.Bin (op, a, b) ->
      Program.Pbin (op, pexpr_of_sexpr ~load a, pexpr_of_sexpr ~load b)
  | Sexpr.Un (op, a) -> Program.Pun (op, pexpr_of_sexpr ~load a)
  | Sexpr.Select (c, a, b) ->
      Program.Pselect (c, pexpr_of_sexpr ~load a, pexpr_of_sexpr ~load b)

let rec map_pexpr_ix f = function
  | Program.Pload a ->
      Program.Pload { a with idx = Array.map f a.idx }
  | Program.Pconst _ as e -> e
  | Program.Pbin (op, a, b) ->
      Program.Pbin (op, map_pexpr_ix f a, map_pexpr_ix f b)
  | Program.Pun (op, a) -> Program.Pun (op, map_pexpr_ix f a)
  | Program.Pselect (c, a, b) ->
      Program.Pselect (Sexpr.map_cond_ix f c, map_pexpr_ix f a, map_pexpr_ix f b)

(* ------------------------------------------------------------------ *)
(* Loop structure                                                     *)
(* ------------------------------------------------------------------ *)

type dim_loops = {
  outer : Program.loop option;
  inner : Program.loop option;
  expr : Ixexpr.t; (* the physical coordinate in terms of loop vars *)
}

let nest_loops loops body =
  List.fold_right (fun l s -> Program.For (l, s)) loops body

let lower ~(op : Opdef.t) ~(layouts : string -> Layout.t)
    ~(out_layout : Layout.t) ?(fused = []) ~(schedule : Schedule.t) () :
    Program.t =
  if not (Shape.equal (Layout.logical_shape out_layout) op.out_shape) then
    err "lower %s: output layout logical shape mismatch" op.name;
  if not (Layout.invertible out_layout) then
    err "lower %s: output layout must be invertible (no unfold/pad)" op.name;
  List.iter
    (fun f ->
      if f.fop.Opdef.combiner <> Opdef.Assign then
        err "lower %s: fused consumer %s is not elementwise" op.name
          f.fop.Opdef.name;
      if not (Shape.equal f.fop.Opdef.out_shape op.out_shape) then
        err "lower %s: fused consumer %s shape mismatch" op.name
          f.fop.Opdef.name;
      if Layout.prims f.fout_layout <> Layout.prims out_layout then
        err
          "lower %s: fusion conflict — consumer %s output layout differs \
           from producer"
          op.name f.fop.Opdef.name)
    fused;

  let phys = Layout.physical_shape out_layout in
  let rank = Shape.rank phys in
  let reduce = Array.of_list op.reduce in
  let schedule =
    Schedule.legalize schedule ~phys ~reduce_extents:(Array.map snd reduce)
  in

  (* Bounds of every variable in play (logical iterators + loop vars). *)
  let btbl : (int, int * int) Hashtbl.t = Hashtbl.create 32 in
  let bounds v = Hashtbl.find_opt btbl (Var.id v) in
  let bind v lo hi = Hashtbl.replace btbl (Var.id v) (lo, hi) in
  Array.iteri (fun i v -> bind v 0 (op.out_shape.(i) - 1)) op.spatial;
  Array.iter (fun (v, e) -> bind v 0 (e - 1)) reduce;
  List.iter
    (fun f -> Array.iteri (fun i v -> bind v 0 (f.fop.Opdef.out_shape.(i) - 1)) f.fop.Opdef.spatial)
    fused;

  (* Spatial loop variables per physical dimension. *)
  let mk_loop tag extent kind =
    let v = Var.fresh tag in
    bind v 0 (extent - 1);
    { Program.v; extent; kind }
  in
  let dims =
    Array.init rank (fun d ->
        let e = phys.(d) in
        let f = schedule.sp_tiles.(d) in
        if f <= 1 || e = 1 then
          let l = mk_loop (Fmt.str "s%d" d) e Program.Serial in
          { outer = Some l; inner = None; expr = Ixexpr.var l.Program.v }
        else if f >= e then
          let l = mk_loop (Fmt.str "s%di" d) e Program.Serial in
          { outer = None; inner = Some l; expr = Ixexpr.var l.Program.v }
        else
          let o = mk_loop (Fmt.str "s%do" d) (e / f) Program.Serial in
          let i = mk_loop (Fmt.str "s%di" d) f Program.Serial in
          {
            outer = Some o;
            inner = Some i;
            expr =
              Ixexpr.add
                (Ixexpr.mul (Ixexpr.var o.Program.v) (Ixexpr.const f))
                (Ixexpr.var i.Program.v);
          })
  in
  let d_exprs = Array.map (fun d -> d.expr) dims in

  (* Reduction loop variables. *)
  let r_subst = Hashtbl.create 8 in
  let ro_loops = ref [] and ri_loops = ref [] in
  Array.iteri
    (fun j (rv, e) ->
      let f = schedule.r_tiles.(j) in
      if f <= 1 || e = 1 then begin
        let l = mk_loop (Fmt.str "r%d" j) e Program.Serial in
        ro_loops := l :: !ro_loops;
        Hashtbl.replace r_subst (Var.id rv) (Ixexpr.var l.Program.v)
      end
      else if f >= e then begin
        let l = mk_loop (Fmt.str "r%di" j) e Program.Serial in
        ri_loops := l :: !ri_loops;
        Hashtbl.replace r_subst (Var.id rv) (Ixexpr.var l.Program.v)
      end
      else begin
        let o = mk_loop (Fmt.str "r%do" j) (e / f) Program.Serial in
        let i = mk_loop (Fmt.str "r%di" j) f Program.Serial in
        ro_loops := o :: !ro_loops;
        ri_loops := i :: !ri_loops;
        Hashtbl.replace r_subst (Var.id rv)
          (Ixexpr.add
             (Ixexpr.mul (Ixexpr.var o.Program.v) (Ixexpr.const f))
             (Ixexpr.var i.Program.v))
      end)
    reduce;
  let reduce_loops = List.rev !ro_loops @ List.rev !ri_loops in

  (* Logical output coordinates in terms of loop variables: S_Y^{-1}(L'). *)
  let logical = Layout.inverse_exprs ~bounds out_layout d_exprs in

  (* Variable substitution: producer/consumer spatial vars -> logical
     coordinates; reduction vars -> their loop expressions. *)
  let subst_tbl = Hashtbl.create 32 in
  Array.iteri
    (fun k v -> Hashtbl.replace subst_tbl (Var.id v) logical.(k))
    op.spatial;
  List.iter
    (fun f ->
      Array.iteri
        (fun k v -> Hashtbl.replace subst_tbl (Var.id v) logical.(k))
        f.fop.Opdef.spatial)
    fused;
  Hashtbl.iter (fun id e -> Hashtbl.replace subst_tbl id e) r_subst;
  let substitute e =
    Ixexpr.simplify ~bounds
      (Ixexpr.subst (fun v -> Hashtbl.find_opt subst_tbl (Var.id v)) e)
  in

  (* Slot table. *)
  let slots : Program.slot list ref = ref [] in
  let slot_of name layout role =
    let indexed = List.mapi (fun i s -> (i, s)) !slots in
    match List.find_opt (fun (_, s) -> s.Program.sname = name) indexed with
    | Some (i, _) -> i
    | None ->
        slots := !slots @ [ { Program.sname = name; layout; role } ];
        List.length !slots - 1
  in
  List.iter
    (fun (n, shape) ->
      let layout = layouts n in
      if not (Shape.equal (Layout.logical_shape layout) shape) then
        err "lower %s: layout for %s has wrong logical shape" op.name n;
      ignore (slot_of n layout Program.Input : int))
    op.inputs;
  let out_role = if fused = [] then Program.Output else Program.Temp in
  let out_slot = slot_of op.out_name out_layout out_role in

  (* Rewrite the producer body: layout-forward each load (Eq. (1) aware),
     then substitute loop variables and simplify. *)
  let window = Opdef.window_fn op in
  let producer_load name idx =
    let layout = layouts name in
    let phys_idx = Layout.forward_exprs ~bounds ~window layout idx in
    { Program.slot = slot_of name layout Program.Input; idx = phys_idx }
  in
  let body0 = pexpr_of_sexpr ~load:producer_load op.body in
  let body = map_pexpr_ix substitute body0 in
  let out_access = { Program.slot = out_slot; idx = d_exprs } in

  (* Fused consumers: lowered at the same loop point.  A consumer load of a
     tensor already produced in this nest resolves to that slot through the
     shared output layout. *)
  let produced = Hashtbl.create 4 in
  Hashtbl.replace produced op.out_name out_layout;
  let consumer_stmts =
    List.mapi
      (fun ci f ->
        let cop = f.fop in
        let load name idx =
          match Hashtbl.find_opt produced name with
          | Some lay ->
              let phys_idx = Layout.forward_exprs ~bounds lay idx in
              { Program.slot = slot_of name lay Program.Temp; idx = phys_idx }
          | None ->
              let lay = layouts name in
              let phys_idx = Layout.forward_exprs ~bounds lay idx in
              { Program.slot = slot_of name lay Program.Input; idx = phys_idx }
        in
        let b = pexpr_of_sexpr ~load cop.Opdef.body in
        let b = map_pexpr_ix substitute b in
        let role =
          if ci = List.length fused - 1 then Program.Output else Program.Temp
        in
        let cslot = slot_of cop.Opdef.out_name f.fout_layout role in
        Hashtbl.replace produced cop.Opdef.out_name f.fout_layout;
        Program.Store ({ Program.slot = cslot; idx = d_exprs }, b))
      fused
  in

  (* Assemble the loop nest. *)
  let outer_band =
    Array.to_list dims |> List.filter_map (fun d -> d.outer)
  in
  let inner_band =
    Array.to_list dims |> List.filter_map (fun d -> d.inner)
  in
  let outer_band =
    List.mapi
      (fun i l ->
        if i < schedule.parallel then { l with Program.kind = Program.Parallel }
        else l)
      outer_band
  in
  let mark_last kind = function
    | [] -> []
    | ls ->
        let n = List.length ls in
        List.mapi (fun i l -> if i = n - 1 then { l with Program.kind = kind } else l) ls
  in
  let outer_band, inner_band =
    if not schedule.vectorize then (outer_band, inner_band)
    else if inner_band <> [] then
      (outer_band, mark_last Program.Vectorized inner_band)
    else (mark_last Program.Vectorized outer_band, inner_band)
  in
  let reduce_loops =
    if schedule.unroll then mark_last Program.Unrolled reduce_loops
    else reduce_loops
  in

  let body_stmt =
    match op.combiner with
    | Opdef.Assign ->
        let core = Program.Block (Program.Store (out_access, body) :: consumer_stmts) in
        nest_loops outer_band (nest_loops inner_band core)
    | Opdef.Sum | Opdef.Max ->
        let red = match op.combiner with Opdef.Sum -> Program.Rsum | _ -> Program.Rmax in
        let init_stmt = Program.Store (out_access, Program.Pconst op.init) in
        let update = Program.Reduce (out_access, red, body) in
        if schedule.reduce_outer then
          let inner_init = nest_loops inner_band init_stmt in
          let inner_update = nest_loops reduce_loops (nest_loops inner_band update) in
          let epilogue =
            if consumer_stmts = [] then []
            else [ nest_loops inner_band (Program.Block consumer_stmts) ]
          in
          nest_loops outer_band
            (Program.Block ([ inner_init; inner_update ] @ epilogue))
        else
          let core =
            Program.Block
              ((init_stmt :: [ nest_loops reduce_loops update ]) @ consumer_stmts)
          in
          nest_loops outer_band (nest_loops inner_band core)
  in
  let flops =
    Opdef.flops op + List.fold_left (fun a f -> a + Opdef.flops f.fop) 0 fused
  in
  {
    Program.pname = op.name;
    body = body_stmt;
    slots = Array.of_list !slots;
    flops;
  }

(* ------------------------------------------------------------------ *)
(* Conversion operators                                               *)
(* ------------------------------------------------------------------ *)

(* A conversion operator copies a tensor stored with [src] layout into
   [dst] layout (Fig. 5a).  It iterates over the destination's physical
   space; positions that fall outside the logical tensor (padding) are
   zero-filled. *)
let conversion ?(name = "convert") ~(src : Layout.t) ~(dst : Layout.t) () :
    Program.t =
  if not (Shape.equal (Layout.logical_shape src) (Layout.logical_shape dst))
  then err "conversion: logical shapes differ";
  if not (Layout.invertible src) then
    err "conversion: source layout must be invertible";
  let phys = Layout.physical_shape dst in
  let rank = Shape.rank phys in
  let btbl = Hashtbl.create 16 in
  let bounds v = Hashtbl.find_opt btbl (Var.id v) in
  let loops =
    Array.to_list
      (Array.init rank (fun d ->
           let v = Var.fresh (Fmt.str "c%d" d) in
           Hashtbl.replace btbl (Var.id v) (0, phys.(d) - 1);
           { Program.v; extent = phys.(d); kind = Program.Serial }))
  in
  let loops =
    match List.rev loops with
    | last :: rest ->
        List.rev ({ last with Program.kind = Program.Vectorized } :: rest)
    | [] -> []
  in
  let pvars = Array.of_list (List.map (fun l -> Ixexpr.var l.Program.v) loops) in
  let logical, conds = Layout.logical_of_physical ~bounds dst pvars in
  let src_idx = Layout.forward_exprs ~bounds src logical in
  let src_access = { Program.slot = 0; idx = src_idx } in
  let dst_access = { Program.slot = 1; idx = pvars } in
  let value =
    match conds with
    | [] -> Program.Pload src_access
    | conds ->
        let cond =
          List.fold_left
            (fun acc (e, d) ->
              let c =
                Sexpr.And
                  ( Sexpr.Cmp (Sexpr.Cge, e, Ixexpr.const 0),
                    Sexpr.Cmp (Sexpr.Clt, e, Ixexpr.const d) )
              in
              match acc with None -> Some c | Some a -> Some (Sexpr.And (a, c)))
            None conds
          |> Option.get
        in
        Program.Pselect (cond, Program.Pload src_access, Program.Pconst 0.0)
  in
  let body = nest_loops loops (Program.Store (dst_access, value)) in
  {
    Program.pname = name;
    body;
    slots =
      [|
        { Program.sname = name ^ ".src"; layout = src; role = Program.Input };
        { Program.sname = name ^ ".dst"; layout = dst; role = Program.Output };
      |];
    flops = 0;
  }

(* ------------------------------------------------------------------ *)
(* Elementwise operator emitting an arbitrary output layout            *)
(* ------------------------------------------------------------------ *)

(* Lower an [Assign] operator so that it *writes* an output layout that may
   contain advanced primitives (pad / unfold).  This realizes Fig. 5b: when
   a layout is propagated backward onto a simple producer, that producer
   performs the conversion as part of its own work instead of a separate
   conversion operator.  The loop nest covers the output's physical space;
   positions that map outside the logical tensor (padding) store zero, and
   overlapped (unfolded) positions are computed redundantly. *)
let lower_assign_to ~(op : Opdef.t) ~(layouts : string -> Layout.t)
    ~(out_layout : Layout.t) ?(vectorize = true) ?(parallel = 0) () :
    Program.t =
  if op.Opdef.combiner <> Opdef.Assign then
    err "lower_assign_to %s: operator is not elementwise" op.Opdef.name;
  if not (Shape.equal (Layout.logical_shape out_layout) op.Opdef.out_shape)
  then err "lower_assign_to %s: output layout shape mismatch" op.Opdef.name;
  let phys = Layout.physical_shape out_layout in
  let rank = Shape.rank phys in
  let btbl = Hashtbl.create 16 in
  let bounds v = Hashtbl.find_opt btbl (Var.id v) in
  let loops =
    Array.to_list
      (Array.init rank (fun d ->
           let v = Var.fresh (Fmt.str "e%d" d) in
           Hashtbl.replace btbl (Var.id v) (0, phys.(d) - 1);
           { Program.v; extent = phys.(d); kind = Program.Serial }))
  in
  let loops =
    List.mapi
      (fun i l ->
        if i < parallel then { l with Program.kind = Program.Parallel } else l)
      loops
  in
  let loops =
    if not vectorize then loops
    else
      match List.rev loops with
      | last :: rest ->
          List.rev ({ last with Program.kind = Program.Vectorized } :: rest)
      | [] -> []
  in
  let pvars = Array.of_list (List.map (fun l -> Ixexpr.var l.Program.v) loops) in
  let logical, conds = Layout.logical_of_physical ~bounds out_layout pvars in
  (* Bind spatial vars to the recovered logical coordinates.  At padded
     positions these can be out of range; the guard below keeps evaluation
     inside the valid branch. *)
  let subst_tbl = Hashtbl.create 16 in
  Array.iteri
    (fun k v -> Hashtbl.replace subst_tbl (Var.id v) logical.(k))
    op.Opdef.spatial;
  let substitute e =
    Ixexpr.simplify ~bounds
      (Ixexpr.subst (fun v -> Hashtbl.find_opt subst_tbl (Var.id v)) e)
  in
  let slots : Program.slot list ref = ref [] in
  let slot_of name layout role =
    let indexed = List.mapi (fun i s -> (i, s)) !slots in
    match List.find_opt (fun (_, s) -> s.Program.sname = name) indexed with
    | Some (i, _) -> i
    | None ->
        slots := !slots @ [ { Program.sname = name; layout; role } ];
        List.length !slots - 1
  in
  let load name idx =
    let lay = layouts name in
    let phys_idx = Layout.forward_exprs ~bounds lay idx in
    { Program.slot = slot_of name lay Program.Input; idx = phys_idx }
  in
  List.iter
    (fun (n, _) -> ignore (slot_of n (layouts n) Program.Input : int))
    op.Opdef.inputs;
  let body0 = pexpr_of_sexpr ~load op.Opdef.body in
  let body = map_pexpr_ix substitute body0 in
  let out_slot = slot_of op.Opdef.out_name out_layout Program.Output in
  let value =
    match conds with
    | [] -> body
    | conds ->
        let cond =
          List.fold_left
            (fun acc (e, d) ->
              let c =
                Sexpr.And
                  ( Sexpr.Cmp (Sexpr.Cge, e, Ixexpr.const 0),
                    Sexpr.Cmp (Sexpr.Clt, e, Ixexpr.const d) )
              in
              match acc with None -> Some c | Some a -> Some (Sexpr.And (a, c)))
            None conds
          |> Option.get
        in
        Program.Pselect (cond, body, Program.Pconst 0.0)
  in
  let stmt =
    nest_loops loops (Program.Store ({ Program.slot = out_slot; idx = pvars }, value))
  in
  {
    Program.pname = op.Opdef.name;
    body = stmt;
    slots = Array.of_list !slots;
    flops = Opdef.flops op;
  }
