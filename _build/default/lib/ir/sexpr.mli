(** Scalar expressions forming operator bodies.

    Tensor reads refer to input tensors by name with {e logical} index
    expressions; lowering rewrites them into physical accesses through each
    tensor's layout.  [Select] provides guarded evaluation (only the taken
    branch is evaluated), used by padding operators and conversion
    programs. *)

module Ixexpr = Alt_tensor.Ixexpr
module Var = Alt_tensor.Var

type binop = Badd | Bsub | Bmul | Bdiv | Bmax | Bmin
type unop = Urelu | Uneg | Uexp | Utanh | Usqrt | Urecip
type cmp = Clt | Cle | Cgt | Cge | Ceq

type cond =
  | Cmp of cmp * Ixexpr.t * Ixexpr.t
  | And of cond * cond
  | Or of cond * cond

and t =
  | Load of string * Ixexpr.t array
  | Fconst of float
  | Bin of binop * t * t
  | Un of unop * t
  | Select of cond * t * t

(** {1 Constructors} *)

val load : string -> Ixexpr.t array -> t
val fconst : float -> t
val ( +. ) : t -> t -> t
val ( -. ) : t -> t -> t
val ( *. ) : t -> t -> t
val ( /. ) : t -> t -> t
val fmax : t -> t -> t
val fmin : t -> t -> t
val relu : t -> t
val select : cond -> t -> t -> t

(** {1 Evaluation} *)

val apply_binop : binop -> float -> float -> float
val apply_unop : unop -> float -> float
val eval_cond : (Var.t -> int) -> cond -> bool

val eval :
  lookup:(string -> Ixexpr.t array -> (Var.t -> int) -> float) ->
  (Var.t -> int) -> t -> float
(** [eval ~lookup env e] with [lookup name idx env] resolving tensor
    reads. *)

(** {1 Analysis and rewriting} *)

val arith_ops : t -> int
(** Arithmetic operations per evaluation (Select counts its worse branch). *)

val loads : t -> (string * Ixexpr.t array) list

val map_loads : (string -> Ixexpr.t array -> t) -> t -> t
(** Replace every load (e.g. to retarget a tensor, as [store_at] does). *)

val map_cond_ix : (Ixexpr.t -> Ixexpr.t) -> cond -> cond

val map_ix : (Ixexpr.t -> Ixexpr.t) -> t -> t
(** Apply a function to every index expression, including conditions. *)

(** {1 Pretty-printing} *)

val pp_binop : binop Fmt.t
val pp_unop : unop Fmt.t
val pp_cond : cond Fmt.t
val pp : t Fmt.t
