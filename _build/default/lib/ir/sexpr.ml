(* Scalar expressions forming operator bodies.

   Tensor reads refer to input tensors *by name* with *logical* index
   expressions; the lowering pass rewrites them into physical accesses
   through each tensor's layout.  [Select] provides guarded reads (used by
   explicit padding operators and by conversion programs into padded or
   unfolded layouts). *)

module Ixexpr = Alt_tensor.Ixexpr
module Var = Alt_tensor.Var

type binop = Badd | Bsub | Bmul | Bdiv | Bmax | Bmin
type unop = Urelu | Uneg | Uexp | Utanh | Usqrt | Urecip
type cmp = Clt | Cle | Cgt | Cge | Ceq

type cond =
  | Cmp of cmp * Ixexpr.t * Ixexpr.t
  | And of cond * cond
  | Or of cond * cond

and t =
  | Load of string * Ixexpr.t array
  | Fconst of float
  | Bin of binop * t * t
  | Un of unop * t
  | Select of cond * t * t

let load name idx = Load (name, idx)
let fconst f = Fconst f
let ( +. ) a b = Bin (Badd, a, b)
let ( -. ) a b = Bin (Bsub, a, b)
let ( *. ) a b = Bin (Bmul, a, b)
let ( /. ) a b = Bin (Bdiv, a, b)
let fmax a b = Bin (Bmax, a, b)
let fmin a b = Bin (Bmin, a, b)
let relu a = Un (Urelu, a)
let select c a b = Select (c, a, b)

let apply_binop op a b =
  match op with
  | Badd -> Float.add a b
  | Bsub -> Float.sub a b
  | Bmul -> Float.mul a b
  | Bdiv -> Float.div a b
  | Bmax -> Float.max a b
  | Bmin -> Float.min a b

let apply_unop op a =
  match op with
  | Urelu -> Float.max 0.0 a
  | Uneg -> Float.neg a
  | Uexp -> Float.exp a
  | Utanh -> Float.tanh a
  | Usqrt -> Float.sqrt a
  | Urecip -> Float.div 1.0 a

let rec eval_cond env c =
  match c with
  | Cmp (op, a, b) -> (
      let x = Ixexpr.eval env a and y = Ixexpr.eval env b in
      match op with
      | Clt -> x < y
      | Cle -> x <= y
      | Cgt -> x > y
      | Cge -> x >= y
      | Ceq -> x = y)
  | And (a, b) -> eval_cond env a && eval_cond env b
  | Or (a, b) -> eval_cond env a || eval_cond env b

(* Evaluate with [lookup name idx] resolving tensor reads. *)
let rec eval ~(lookup : string -> Ixexpr.t array -> (Var.t -> int) -> float)
    (env : Var.t -> int) = function
  | Load (name, idx) -> lookup name idx env
  | Fconst f -> f
  | Bin (op, a, b) -> apply_binop op (eval ~lookup env a) (eval ~lookup env b)
  | Un (op, a) -> apply_unop op (eval ~lookup env a)
  | Select (c, a, b) ->
      if eval_cond env c then eval ~lookup env a else eval ~lookup env b

(* Number of arithmetic operations per evaluation (static; Select counts
   the worst branch).  Used for FLOP and instruction estimates. *)
let rec arith_ops = function
  | Load _ | Fconst _ -> 0
  | Bin (_, a, b) -> 1 + arith_ops a + arith_ops b
  | Un (_, a) -> 1 + arith_ops a
  | Select (_, a, b) -> 1 + max (arith_ops a) (arith_ops b)

let rec loads = function
  | Load (n, i) -> [ (n, i) ]
  | Fconst _ -> []
  | Bin (_, a, b) -> loads a @ loads b
  | Un (_, a) -> loads a
  | Select (_, a, b) -> loads a @ loads b

let rec map_loads f = function
  | Load (n, i) -> f n i
  | Fconst _ as e -> e
  | Bin (op, a, b) -> Bin (op, map_loads f a, map_loads f b)
  | Un (op, a) -> Un (op, map_loads f a)
  | Select (c, a, b) -> Select (c, map_loads f a, map_loads f b)

let rec map_cond_ix f = function
  | Cmp (op, a, b) -> Cmp (op, f a, f b)
  | And (a, b) -> And (map_cond_ix f a, map_cond_ix f b)
  | Or (a, b) -> Or (map_cond_ix f a, map_cond_ix f b)

(* Apply [f] to every index expression, including those in conditions. *)
let rec map_ix f = function
  | Load (n, idx) -> Load (n, Array.map f idx)
  | Fconst _ as e -> e
  | Bin (op, a, b) -> Bin (op, map_ix f a, map_ix f b)
  | Un (op, a) -> Un (op, map_ix f a)
  | Select (c, a, b) -> Select (map_cond_ix f c, map_ix f a, map_ix f b)

let pp_binop ppf op =
  Fmt.string ppf
    (match op with
    | Badd -> "+"
    | Bsub -> "-"
    | Bmul -> "*"
    | Bdiv -> "/"
    | Bmax -> "max"
    | Bmin -> "min")

let pp_unop ppf op =
  Fmt.string ppf
    (match op with
    | Urelu -> "relu"
    | Uneg -> "neg"
    | Uexp -> "exp"
    | Utanh -> "tanh"
    | Usqrt -> "sqrt"
    | Urecip -> "recip")

let rec pp_cond ppf = function
  | Cmp (op, a, b) ->
      let s =
        match op with
        | Clt -> "<"
        | Cle -> "<="
        | Cgt -> ">"
        | Cge -> ">="
        | Ceq -> "=="
      in
      Fmt.pf ppf "%a %s %a" Ixexpr.pp a s Ixexpr.pp b
  | And (a, b) -> Fmt.pf ppf "(%a && %a)" pp_cond a pp_cond b
  | Or (a, b) -> Fmt.pf ppf "(%a || %a)" pp_cond a pp_cond b

let rec pp ppf = function
  | Load (n, idx) ->
      Fmt.pf ppf "%s[%a]" n Fmt.(array ~sep:(any "][") Ixexpr.pp) idx
  | Fconst f -> Fmt.float ppf f
  | Bin (((Badd | Bsub | Bmul | Bdiv) as op), a, b) ->
      Fmt.pf ppf "(%a %a %a)" pp a pp_binop op pp b
  | Bin (op, a, b) -> Fmt.pf ppf "%a(%a, %a)" pp_binop op pp a pp b
  | Un (op, a) -> Fmt.pf ppf "%a(%a)" pp_unop op pp a
  | Select (c, a, b) -> Fmt.pf ppf "select(%a, %a, %a)" pp_cond c pp a pp b
