(** Operator compute definitions: layout- and schedule-independent
    descriptions of tensor operators, plus a naive reference interpreter
    used as the correctness oracle for every transformation. *)

module Shape = Alt_tensor.Shape
module Var = Alt_tensor.Var
module Ixexpr = Alt_tensor.Ixexpr

type combiner = Sum | Max | Assign

(** Sliding-window geometry of one spatial dimension of a convolution-like
    operator (metadata consumed by the layout-template builder). *)
type conv_spatial = {
  out_dim : int; (** output tensor dimension *)
  inp_dim : int; (** input tensor dimension *)
  kernel : int;
  stride : int;
  dilation : int;
}

(** Operator classification used to choose a layout tuning template. *)
type kind =
  | Simple
  | Conv of {
      inp : string;
      ker : string;
      out_channel_dim : int;
      inp_channel_dim : int;
      ker_out_dim : int;
      ker_in_dim : int option; (** [None] for depthwise weights *)
      spatials : conv_spatial list;
    }
  | Matmul of { a : string; b : string; batched : bool }

type t = {
  name : string;
  inputs : (string * Shape.t) list;
  out_name : string;
  out_shape : Shape.t;
  spatial : Var.t array; (** one iterator per logical output dim *)
  reduce : (Var.t * int) list; (** reduction iterators with extents *)
  combiner : combiner;
  init : float; (** reduction identity *)
  body : Sexpr.t;
  window : (Var.t * int) list;
      (** spatial iterators in sliding-window accesses, with stride V *)
  complex : bool;
      (** "complex operator" in the paper's sense: gets a layout space *)
  kind : kind;
}

val make :
  name:string ->
  inputs:(string * Shape.t) list ->
  out_name:string ->
  out_shape:Shape.t ->
  spatial:Var.t array ->
  reduce:(Var.t * int) list ->
  combiner:combiner ->
  init:float ->
  body:Sexpr.t ->
  ?window:(Var.t * int) list ->
  ?complex:bool ->
  ?kind:kind ->
  unit -> t
(** Validated constructor (iterator counts, known body tensors). *)

val input_shape : t -> string -> Shape.t

val bounds : t -> Ixexpr.bounds
(** Inclusive ranges of every iterator. *)

val window_fn : t -> Alt_tensor.Layout.window

val flops : t -> int
(** Total arithmetic work (for accounting). *)

val total_points : t -> int
(** Spatial x reduction iteration count. *)

val reference_eval : t -> (string * float array) list -> float array
(** Naive interpretation over logical row-major buffers. *)

val pp : t Fmt.t
