(* Machine models: the three hardware profiles of the paper's evaluation.

   Each profile fixes SIMD width, core count, a two-level cache geometry,
   a hardware prefetcher depth and a latency model.  The numbers are
   plausible for the paper's platforms (Intel Xeon, NVIDIA V100 — modelled
   as a very wide, very parallel SIMD machine — and an ARM Cortex-A76 SoC);
   they are not calibrated to silicon, only meant to preserve the relative
   behaviour that layout and loop optimization exploit.  The ARM prefetcher
   fetches 4 consecutive lines on a miss, matching the measurement that
   motivates the paper's Table 2. *)

type t = {
  name : string;
  lanes : int; (* SIMD lanes for float32 *)
  cores : int;
  freq_ghz : float;
  cpi : float; (* average cycles per scalar instruction *)
  l1 : Cache.cfg;
  l2 : Cache.cfg;
  prefetch_extra : int; (* further consecutive lines fetched on a miss *)
  l1_miss_penalty : float; (* cycles *)
  l2_miss_penalty : float;
  parallel_efficiency : float;
  reg_cap : int; (* floats that can live in registers for accumulation *)
}

let intel_cpu =
  {
    name = "intel-cpu";
    lanes = 16 (* AVX-512 *);
    cores = 32;
    freq_ghz = 2.5;
    cpi = 0.35;
    l1 = { Cache.size_bytes = 32 * 1024; assoc = 8; line_bytes = 64 };
    l2 = { Cache.size_bytes = 1024 * 1024; assoc = 16; line_bytes = 64 };
    prefetch_extra = 1;
    l1_miss_penalty = 12.0;
    l2_miss_penalty = 60.0;
    parallel_efficiency = 0.85;
    reg_cap = 64;
  }

let nvidia_gpu =
  {
    name = "nvidia-gpu";
    lanes = 32 (* warp *);
    cores = 80 (* SMs *);
    freq_ghz = 1.4;
    cpi = 0.08;
    l1 = { Cache.size_bytes = 64 * 1024; assoc = 8; line_bytes = 128 };
    l2 = { Cache.size_bytes = 4 * 1024 * 1024; assoc = 16; line_bytes = 128 };
    prefetch_extra = 0 (* GPUs rely on massive threading, not prefetch *);
    l1_miss_penalty = 8.0;
    l2_miss_penalty = 36.0;
    parallel_efficiency = 0.9;
    reg_cap = 128;
  }

let arm_cpu =
  {
    name = "arm-cpu";
    lanes = 4 (* NEON *);
    cores = 4;
    freq_ghz = 2.0;
    cpi = 0.6;
    l1 = { Cache.size_bytes = 64 * 1024; assoc = 4; line_bytes = 64 };
    l2 = { Cache.size_bytes = 512 * 1024; assoc = 8; line_bytes = 64 };
    prefetch_extra = 3 (* 4 consecutive lines per miss event, Table 2 *);
    l1_miss_penalty = 10.0;
    l2_miss_penalty = 90.0;
    parallel_efficiency = 0.8;
    reg_cap = 32;
  }

let all = [ intel_cpu; nvidia_gpu; arm_cpu ]

let by_name n =
  match List.find_opt (fun m -> m.name = n) all with
  | Some m -> m
  | None -> invalid_arg (Fmt.str "Machine.by_name: unknown machine %s" n)

let pp ppf m = Fmt.string ppf m.name
