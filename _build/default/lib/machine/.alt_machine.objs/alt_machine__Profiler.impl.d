lib/machine/profiler.ml: Alt_ir Alt_tensor Array Cache Float Fmt Hashtbl List Machine
