lib/machine/runtime.mli: Alt_ir Machine Profiler
