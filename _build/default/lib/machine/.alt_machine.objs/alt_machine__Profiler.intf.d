lib/machine/profiler.mli: Alt_ir Fmt Machine
