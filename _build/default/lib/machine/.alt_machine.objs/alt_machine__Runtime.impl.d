lib/machine/runtime.ml: Alt_ir Alt_tensor Array Fmt List Profiler
