lib/machine/cache.mli:
