lib/machine/machine.mli: Cache Fmt
