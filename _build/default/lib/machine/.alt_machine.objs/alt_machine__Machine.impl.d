lib/machine/machine.ml: Cache Fmt List
