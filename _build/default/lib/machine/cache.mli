(** Set-associative LRU cache model with explicit prefetch insertion.
    Addresses are byte addresses; only line tags are stored. *)

type cfg = { size_bytes : int; assoc : int; line_bytes : int }

type t

val create : cfg -> t
(** Geometry must be power-of-two sets and line size. *)

val reset : t -> unit

val access : t -> int -> bool
(** [access t addr] returns [true] on hit; on miss the line is installed
    with LRU eviction. *)

val prefetch : t -> int -> bool
(** Install a line without counting a demand access; [true] if newly
    installed. *)

val line_bytes : t -> int
