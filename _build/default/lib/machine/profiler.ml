(* Trace-driven program profiler.

   Interprets a lowered program against concrete buffers while feeding every
   memory access through the two-level cache model and counting issued
   instructions.  This is the stand-in for the paper's on-device
   measurement: one [run] = one "hardware measurement" of the auto-tuner.

   Modelling notes:
   - Vectorization: statements under a [Vectorized] loop cost 1/lanes
     instructions when their accesses are contiguous (stride 0 or 1 in the
     vectorized variable); non-contiguous accesses cost a full gather.
     All per-element cache effects are still simulated.
   - Register accumulation: a [Reduce] whose accumulator tile fits in
     registers is charged memory traffic once every K iterations, where K
     is the extent product of the enclosing loops the accumulator is
     invariant in (bounded by the register budget).  This models the
     register blocking every real tensor compiler performs; without it,
     reduction order would be invisible to the model.
   - Parallelism: counters are accumulated serially; the latency formula
     divides by the effective speedup of loops marked [Parallel].
   - Sampling: when the iteration space exceeds [max_points], outermost
     loops are truncated proportionally and the counters are rescaled
     (documented in DESIGN.md §5); [sampled] is set in the result and
     numerical outputs are then partial. *)

module Var = Alt_tensor.Var
module Shape = Alt_tensor.Shape
module Ixexpr = Alt_tensor.Ixexpr
module Layout = Alt_tensor.Layout
module Program = Alt_ir.Program
module Sexpr = Alt_ir.Sexpr

type counters = {
  mutable insts : float;
  mutable loads : float;
  mutable stores : float;
  mutable flops : float;
  mutable l1_accesses : float;
  mutable l1_misses : float;
  mutable l2_misses : float;
}

type result = {
  machine : Machine.t;
  insts : float;
  loads : float;
  stores : float;
  flops : float;
  l1_accesses : float;
  l1_misses : float;
  l2_misses : float;
  parallel_extent : int;
  cycles : float;
  latency_ms : float;
  sampled : bool;
  scale : float;
}

let elem_bytes = 4 (* float32 addressing model *)

(* ------------------------------------------------------------------ *)
(* Execution context                                                  *)
(* ------------------------------------------------------------------ *)

type ctx = {
  mutable env : int array; (* loop variable values, dense-indexed *)
  mutable bufs : float array array;
  mutable bases : int array; (* byte base address per slot *)
  l1 : Cache.t;
  l2 : Cache.t;
  machine : Machine.t;
  c : counters;
}

let mem_access ctx addr =
  ctx.c.l1_accesses <- ctx.c.l1_accesses +. 1.0;
  if not (Cache.access ctx.l1 addr) then begin
    ctx.c.l1_misses <- ctx.c.l1_misses +. 1.0;
    if not (Cache.access ctx.l2 addr) then
      ctx.c.l2_misses <- ctx.c.l2_misses +. 1.0;
    let lb = Cache.line_bytes ctx.l1 in
    for k = 1 to ctx.machine.Machine.prefetch_extra do
      ignore (Cache.prefetch ctx.l1 (addr + (k * lb)) : bool);
      ignore (Cache.prefetch ctx.l2 (addr + (k * lb)) : bool)
    done
  end

(* ------------------------------------------------------------------ *)
(* Expression compilation                                             *)
(* ------------------------------------------------------------------ *)

type varmap = { tbl : (int, int) Hashtbl.t; mutable next : int }

let var_slot vm (v : Var.t) =
  match Hashtbl.find_opt vm.tbl (Var.id v) with
  | Some i -> i
  | None ->
      let i = vm.next in
      vm.next <- i + 1;
      Hashtbl.replace vm.tbl (Var.id v) i;
      i

let rec compile_ix vm (e : Ixexpr.t) : int array -> int =
  match e with
  | Ixexpr.Const n -> fun _ -> n
  | Ixexpr.Var v ->
      let i = var_slot vm v in
      fun env -> env.(i)
  | Ixexpr.Add (a, b) ->
      let fa = compile_ix vm a and fb = compile_ix vm b in
      fun env -> fa env + fb env
  | Ixexpr.Sub (a, b) ->
      let fa = compile_ix vm a and fb = compile_ix vm b in
      fun env -> fa env - fb env
  | Ixexpr.Mul (a, b) ->
      let fa = compile_ix vm a and fb = compile_ix vm b in
      fun env -> fa env * fb env
  | Ixexpr.Div (a, b) ->
      let fa = compile_ix vm a and fb = compile_ix vm b in
      fun env -> Ixexpr.fdiv (fa env) (fb env)
  | Ixexpr.Mod (a, b) ->
      let fa = compile_ix vm a and fb = compile_ix vm b in
      fun env -> Ixexpr.fmod (fa env) (fb env)
  | Ixexpr.Min (a, b) ->
      let fa = compile_ix vm a and fb = compile_ix vm b in
      fun env -> min (fa env) (fb env)
  | Ixexpr.Max (a, b) ->
      let fa = compile_ix vm a and fb = compile_ix vm b in
      fun env -> max (fa env) (fb env)

let rec compile_cond vm (c : Sexpr.cond) : int array -> bool =
  match c with
  | Sexpr.Cmp (op, a, b) -> (
      let fa = compile_ix vm a and fb = compile_ix vm b in
      match op with
      | Sexpr.Clt -> fun env -> fa env < fb env
      | Sexpr.Cle -> fun env -> fa env <= fb env
      | Sexpr.Cgt -> fun env -> fa env > fb env
      | Sexpr.Cge -> fun env -> fa env >= fb env
      | Sexpr.Ceq -> fun env -> fa env = fb env)
  | Sexpr.And (a, b) ->
      let fa = compile_cond vm a and fb = compile_cond vm b in
      fun env -> fa env && fb env
  | Sexpr.Or (a, b) ->
      let fa = compile_cond vm a and fb = compile_cond vm b in
      fun env -> fa env || fb env

(* Static offset of an access: element offset closure over env. *)
let compile_offset vm (slots : Program.slot array) (a : Program.access) :
    int array -> int =
  let phys = Layout.physical_shape slots.(a.Program.slot).Program.layout in
  let strides = Shape.strides phys in
  let fs = Array.map (compile_ix vm) a.Program.idx in
  let n = Array.length fs in
  fun env ->
    let off = ref 0 in
    for i = 0 to n - 1 do
      off := !off + (fs.(i) env * strides.(i))
    done;
    !off

(* Stride of the vectorized variable through the flattened offset of [a];
   [None] when not affine.  0 and 1 are "contiguous" for vector issue. *)
let vec_stride (slots : Program.slot array) (a : Program.access)
    (v : Var.t option) : int option =
  match v with
  | None -> Some 0
  | Some v -> (
      let phys = Layout.physical_shape slots.(a.Program.slot).Program.layout in
      let strides = Shape.strides phys in
      let total = ref (Some 0) in
      Array.iteri
        (fun i e ->
          match (!total, Ixexpr.coeff_of e v) with
          | Some t, Some c -> total := Some (t + (c * strides.(i)))
          | _ -> total := None)
        a.Program.idx;
      !total)

type vec_ctx = { vvar : Var.t option; lanes : int }

let access_inst_cost slots vc a =
  match vc.vvar with
  | None -> 1.0
  | Some _ -> (
      match vec_stride slots a vc.vvar with
      | Some 0 | Some 1 -> 1.0 /. float_of_int vc.lanes
      | Some _ | None -> 1.0)

(* Compile a pexpr to an evaluator; loads count themselves. *)
let rec compile_pexpr vm slots vc ctx (e : Program.pexpr) :
    int array -> float =
  match e with
  | Program.Pconst f -> fun _ -> f
  | Program.Pload a ->
      let off = compile_offset vm slots a in
      let cost = access_inst_cost slots vc a in
      let slot = a.Program.slot in
      fun env ->
        let o = off env in
        mem_access ctx (ctx.bases.(slot) + (o * elem_bytes));
        ctx.c.loads <- ctx.c.loads +. cost;
        ctx.c.insts <- ctx.c.insts +. cost;
        ctx.bufs.(slot).(o)
  | Program.Pbin (op, a, b) ->
      let fa = compile_pexpr vm slots vc ctx a
      and fb = compile_pexpr vm slots vc ctx b in
      let g = Sexpr.apply_binop op in
      fun env -> g (fa env) (fb env)
  | Program.Pun (op, a) ->
      let fa = compile_pexpr vm slots vc ctx a in
      let g = Sexpr.apply_unop op in
      fun env -> g (fa env)
  | Program.Pselect (c, a, b) ->
      let fc = compile_cond vm c
      and fa = compile_pexpr vm slots vc ctx a
      and fb = compile_pexpr vm slots vc ctx b in
      fun env -> if fc env then fa env else fb env

let rec pexpr_arith = function
  | Program.Pload _ | Program.Pconst _ -> 0
  | Program.Pbin (_, a, b) -> 1 + pexpr_arith a + pexpr_arith b
  | Program.Pun (_, a) -> 1 + pexpr_arith a
  | Program.Pselect (_, a, b) -> 1 + max (pexpr_arith a) (pexpr_arith b)

(* ------------------------------------------------------------------ *)
(* Sampling: truncate outermost loops to fit a point budget.           *)
(* ------------------------------------------------------------------ *)

(* Annotated copy of the statement tree carrying simulated extents. *)
type astmt =
  | Afor of Program.loop * int (* simulated extent *) * astmt
  | Ablock of astmt list
  | Aleaf of Program.stmt

let rec annotate ratio (s : Program.stmt) : astmt =
  match s with
  | Program.For (l, b) ->
      if ratio >= 1.0 then Afor (l, l.Program.extent, annotate 1.0 b)
      else
        let sim =
          max 1
            (int_of_float (Float.round (ratio *. float_of_int l.Program.extent)))
        in
        let sim = min sim l.Program.extent in
        let ratio' = ratio *. float_of_int l.Program.extent /. float_of_int sim in
        Afor (l, sim, annotate (Float.min 1.0 ratio') b)
  | Program.Block lst -> Ablock (List.map (annotate ratio) lst)
  | (Program.Store _ | Program.Reduce _) as leaf -> Aleaf leaf

let rec sim_points = function
  | Afor (_, sim, b) -> sim * sim_points b
  | Ablock l -> List.fold_left (fun a s -> a + sim_points s) 0 l
  | Aleaf _ -> 1

(* ------------------------------------------------------------------ *)
(* Statement compilation                                              *)
(* ------------------------------------------------------------------ *)

(* Register-promotion factor for a reduction accumulator: walk enclosing
   loops innermost-first; loops whose variable the accumulator offset does
   not depend on multiply K (traffic divisor); loops it does depend on grow
   the register-tile footprint until the register budget is exhausted. *)
let promotion_factor machine (enclosing : Program.loop list)
    (a : Program.access) : int =
  let deps =
    Array.fold_left
      (fun s e -> Var.Set.union s (Ixexpr.vars e))
      Var.Set.empty a.Program.idx
  in
  let rec walk footprint k = function
    | [] -> k
    | (l : Program.loop) :: tl ->
        if Var.Set.mem l.Program.v deps then begin
          let footprint' = footprint * l.Program.extent in
          if footprint' > machine.Machine.reg_cap then k
          else walk footprint' k tl
        end
        else walk footprint (k * l.Program.extent) tl
  in
  max 1 (walk 1 1 enclosing)

let compile ctx (p : Program.t) ~(sample_ratio : float) =
  let machine = ctx.machine in
  let vm = { tbl = Hashtbl.create 64; next = 0 } in
  let slots = p.Program.slots in
  let ann = annotate sample_ratio p.Program.body in
  (* enclosing: innermost-first loop list; vc: vectorization context *)
  let rec comp (enclosing : Program.loop list) (vc : vec_ctx) = function
    | Afor (l, sim, b) ->
        let slot = var_slot vm l.Program.v in
        let vc' =
          if l.Program.kind = Program.Vectorized then
            { vvar = Some l.Program.v; lanes = machine.Machine.lanes }
          else vc
        in
        let fb = comp (l :: enclosing) vc' b in
        fun () ->
          let env = ctx.env in
          for x = 0 to sim - 1 do
            env.(slot) <- x;
            fb ()
          done
    | Ablock lst ->
        let fs = List.map (comp enclosing vc) lst in
        fun () -> List.iter (fun f -> f ()) fs
    | Aleaf (Program.Store (a, e)) ->
        let off = compile_offset vm slots a in
        let fe = compile_pexpr vm slots vc ctx e in
        let arith = float_of_int (pexpr_arith e) in
        let arith_scaled =
          match vc.vvar with
          | None -> arith
          | Some _ -> arith /. float_of_int vc.lanes
        in
        let st_cost = access_inst_cost slots vc a in
        let slot = a.Program.slot in
        fun () ->
          let v = fe ctx.env in
          let o = off ctx.env in
          mem_access ctx (ctx.bases.(slot) + (o * elem_bytes));
          ctx.bufs.(slot).(o) <- v;
          ctx.c.stores <- ctx.c.stores +. st_cost;
          ctx.c.insts <- ctx.c.insts +. st_cost +. arith_scaled;
          ctx.c.flops <- ctx.c.flops +. arith
    | Aleaf (Program.For _ | Program.Block _) -> assert false
    | Aleaf (Program.Reduce (a, r, e)) ->
        let off = compile_offset vm slots a in
        let fe = compile_pexpr vm slots vc ctx e in
        let arith = float_of_int (pexpr_arith e + 1) in
        let arith_scaled =
          match vc.vvar with
          | None -> arith
          | Some _ -> arith /. float_of_int vc.lanes
        in
        let acc_cost = access_inst_cost slots vc a in
        let k = promotion_factor machine enclosing a in
        let tick = ref 0 in
        let slot = a.Program.slot in
        let combine =
          match r with
          | Program.Rsum -> Float.add
          | Program.Rmax -> Float.max
        in
        fun () ->
          let v = fe ctx.env in
          let o = off ctx.env in
          let buf = ctx.bufs.(slot) in
          buf.(o) <- combine buf.(o) v;
          ctx.c.insts <- ctx.c.insts +. arith_scaled;
          ctx.c.flops <- ctx.c.flops +. arith;
          incr tick;
          if !tick >= k then begin
            tick := 0;
            (* accumulator spill/refill once per K iterations *)
            let addr = ctx.bases.(slot) + (o * elem_bytes) in
            mem_access ctx addr;
            mem_access ctx addr;
            ctx.c.loads <- ctx.c.loads +. acc_cost;
            ctx.c.stores <- ctx.c.stores +. acc_cost;
            ctx.c.insts <- ctx.c.insts +. (2.0 *. acc_cost)
          end
  in
  let runner = comp [] { vvar = None; lanes = machine.Machine.lanes } ann in
  (vm, runner, ann)

(* ------------------------------------------------------------------ *)
(* Entry point                                                        *)
(* ------------------------------------------------------------------ *)

let parallel_extent (p : Program.t) =
  List.fold_left
    (fun acc (l : Program.loop) ->
      if l.Program.kind = Program.Parallel then acc * l.Program.extent else acc)
    1 (Program.loops p)

let latency_of_counters machine ~(c : counters) ~(par : int) =
  let compute = c.insts *. machine.Machine.cpi in
  let mem =
    (c.l1_misses *. machine.Machine.l1_miss_penalty)
    +. (c.l2_misses *. machine.Machine.l2_miss_penalty)
  in
  let serial = Float.max compute mem +. (0.25 *. Float.min compute mem) in
  let speedup =
    if par > 1 then
      Float.max 1.0
        (float_of_int (min machine.Machine.cores par)
        *. machine.Machine.parallel_efficiency)
    else 1.0
  in
  serial /. speedup

let run ?(machine = Machine.intel_cpu) ?max_points (p : Program.t)
    ~(bufs : float array array) : result =
  if Array.length bufs <> Array.length p.Program.slots then
    invalid_arg "Profiler.run: buffer count mismatch";
  Array.iteri
    (fun i b ->
      let want =
        Layout.num_physical_elements p.Program.slots.(i).Program.layout
      in
      if Array.length b <> want then
        invalid_arg
          (Fmt.str "Profiler.run: slot %d (%s) has %d elements, want %d" i
             p.Program.slots.(i).Program.sname (Array.length b) want))
    bufs;
  let total = Program.points p in
  let ratio =
    match max_points with
    | Some m when total > m -> float_of_int m /. float_of_int total
    | _ -> 1.0
  in
  let c =
    {
      insts = 0.0;
      loads = 0.0;
      stores = 0.0;
      flops = 0.0;
      l1_accesses = 0.0;
      l1_misses = 0.0;
      l2_misses = 0.0;
    }
  in
  let ctx =
    {
      env = [||];
      bufs;
      bases = [||];
      l1 = Cache.create machine.Machine.l1;
      l2 = Cache.create machine.Machine.l2;
      machine;
      c;
    }
  in
  let vm, runner, ann = compile ctx p ~sample_ratio:ratio in
  let simulated = sim_points ann in
  let scale = float_of_int total /. float_of_int (max 1 simulated) in
  (* Distinct, line-aligned base addresses per slot. *)
  let bases = Array.make (Array.length bufs) 0 in
  let cursor = ref 0 in
  Array.iteri
    (fun i b ->
      bases.(i) <- !cursor;
      let bytes = Array.length b * elem_bytes in
      let lb = machine.Machine.l1.Cache.line_bytes in
      cursor := !cursor + (Shape.cdiv bytes lb * lb) + lb)
    bufs;
  ctx.env <- Array.make (max 1 vm.next) 0;
  ctx.bases <- bases;
  runner ();
  c.insts <- c.insts *. scale;
  c.loads <- c.loads *. scale;
  c.stores <- c.stores *. scale;
  c.flops <- c.flops *. scale;
  c.l1_accesses <- c.l1_accesses *. scale;
  c.l1_misses <- c.l1_misses *. scale;
  c.l2_misses <- c.l2_misses *. scale;
  let par = parallel_extent p in
  let cycles = latency_of_counters machine ~c ~par in
  {
    machine;
    insts = c.insts;
    loads = c.loads;
    stores = c.stores;
    flops = c.flops;
    l1_accesses = c.l1_accesses;
    l1_misses = c.l1_misses;
    l2_misses = c.l2_misses;
    parallel_extent = par;
    cycles;
    latency_ms = cycles /. (machine.Machine.freq_ghz *. 1e6);
    sampled = ratio < 1.0;
    scale;
  }

let pp_result ppf (r : result) =
  Fmt.pf ppf
    "@[<h>%s: lat=%.4fms insts=%.3e loads=%.3e stores=%.3e l1mis=%.3e \
     l2mis=%.3e flops=%.3e par=%d%s@]"
    r.machine.Machine.name r.latency_ms r.insts r.loads r.stores r.l1_misses
    r.l2_misses r.flops r.parallel_extent
    (if r.sampled then Fmt.str " (sampled x%.1f)" r.scale else "")
