(* Set-associative LRU cache model.

   The simulator substitutes for the paper's hardware testbeds: data layout
   optimizations pay off through spatial locality, prefetch friendliness and
   reuse distance, which is exactly what a cache model measures.  Addresses
   are byte addresses; the cache stores line tags only (data lives in the
   program buffers). *)

type cfg = { size_bytes : int; assoc : int; line_bytes : int }

type t = {
  cfg : cfg;
  sets : int;
  line_shift : int;
  tags : int array; (* sets * assoc; -1 = invalid *)
  stamp : int array; (* LRU stamps, same indexing *)
  mutable clock : int;
}

let log2_exact n =
  let rec go k = if 1 lsl k = n then k else go (k + 1) in
  if n <= 0 || n land (n - 1) <> 0 then
    invalid_arg "Cache.log2_exact: not a power of two"
  else go 0

let create cfg =
  let lines = cfg.size_bytes / cfg.line_bytes in
  if lines mod cfg.assoc <> 0 then invalid_arg "Cache.create: geometry";
  let sets = lines / cfg.assoc in
  ignore (log2_exact cfg.line_bytes);
  ignore (log2_exact sets);
  {
    cfg;
    sets;
    line_shift = log2_exact cfg.line_bytes;
    tags = Array.make (sets * cfg.assoc) (-1);
    stamp = Array.make (sets * cfg.assoc) 0;
    clock = 0;
  }

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamp 0 (Array.length t.stamp) 0;
  t.clock <- 0

let line_of t addr = addr lsr t.line_shift

(* Returns true on hit.  On miss the line is installed (LRU eviction). *)
let access t addr =
  let line = line_of t addr in
  let set = line land (t.sets - 1) in
  let base = set * t.cfg.assoc in
  t.clock <- t.clock + 1;
  let rec probe i =
    if i = t.cfg.assoc then None
    else if t.tags.(base + i) = line then Some i
    else probe (i + 1)
  in
  match probe 0 with
  | Some i ->
      t.stamp.(base + i) <- t.clock;
      true
  | None ->
      (* install in LRU way *)
      let victim = ref 0 in
      for i = 1 to t.cfg.assoc - 1 do
        if t.stamp.(base + i) < t.stamp.(base + !victim) then victim := i
      done;
      t.tags.(base + !victim) <- line;
      t.stamp.(base + !victim) <- t.clock;
      false

(* Install a line without counting it as a demand access (prefetch).
   Returns true if the line was newly installed. *)
let prefetch t addr =
  let line = line_of t addr in
  let set = line land (t.sets - 1) in
  let base = set * t.cfg.assoc in
  let rec probe i =
    if i = t.cfg.assoc then None
    else if t.tags.(base + i) = line then Some i
    else probe (i + 1)
  in
  match probe 0 with
  | Some _ -> false
  | None ->
      t.clock <- t.clock + 1;
      let victim = ref 0 in
      for i = 1 to t.cfg.assoc - 1 do
        if t.stamp.(base + i) < t.stamp.(base + !victim) then victim := i
      done;
      t.tags.(base + !victim) <- line;
      t.stamp.(base + !victim) <- t.clock;
      true

let line_bytes t = t.cfg.line_bytes
