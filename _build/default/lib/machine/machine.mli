(** Machine models: the three hardware profiles substituting for the
    paper's testbeds (Intel Xeon, NVIDIA V100, ARM Cortex-A76 SoC). *)

type t = {
  name : string;
  lanes : int;  (** SIMD lanes for float32 *)
  cores : int;
  freq_ghz : float;
  cpi : float;  (** average cycles per scalar instruction *)
  l1 : Cache.cfg;
  l2 : Cache.cfg;
  prefetch_extra : int;  (** further consecutive lines fetched on a miss *)
  l1_miss_penalty : float;  (** cycles *)
  l2_miss_penalty : float;
  parallel_efficiency : float;
  reg_cap : int;  (** floats available for register accumulation *)
}

val intel_cpu : t
val nvidia_gpu : t
val arm_cpu : t
val all : t list
val by_name : string -> t
val pp : t Fmt.t
