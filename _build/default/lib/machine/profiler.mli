(** Trace-driven program profiler: interprets a lowered program against
    concrete buffers while simulating the cache hierarchy and counting
    issued instructions.  One [run] is one simulated "on-device
    measurement" of the auto-tuner (see the implementation header for the
    modelling notes on vectorization, register accumulation, parallelism
    and sampling). *)

module Program = Alt_ir.Program

type result = {
  machine : Machine.t;
  insts : float;  (** issued instructions (vector-scaled) *)
  loads : float;  (** load instructions *)
  stores : float;
  flops : float;
  l1_accesses : float;
  l1_misses : float;
  l2_misses : float;
  parallel_extent : int;
  cycles : float;
  latency_ms : float;
  sampled : bool;  (** outer loops were truncated; outputs are partial *)
  scale : float;  (** counter extrapolation factor when sampled *)
}

val run :
  ?machine:Machine.t -> ?max_points:int -> Program.t ->
  bufs:float array array -> result
(** Execute the program over per-slot physical buffers (see
    {!Runtime.alloc_bufs}).  When the iteration count exceeds
    [max_points], outermost loops are truncated and counters rescaled. *)

val pp_result : result Fmt.t
