(* Static program features for the learned cost model (Section 5.2.3).

   Mirrors the role of Ansor's feature extraction: loop structure, access
   locality, footprints relative to the cache hierarchy, vectorization and
   parallelism — everything the tuner needs to rank candidates without
   running them.  All features are cheap functions of the lowered program;
   none require simulation. *)

module Var = Alt_tensor.Var
module Shape = Alt_tensor.Shape
module Ixexpr = Alt_tensor.Ixexpr
module Layout = Alt_tensor.Layout
module Program = Alt_ir.Program
module Machine = Alt_machine.Machine
module Cache = Alt_machine.Cache

let dim = 24

let log1p x = Float.log (1.0 +. x)

(* Stride of [v] through the flattened offset of access [a]. *)
let stride_of slots (a : Program.access) (v : Var.t) : int option =
  let phys = Layout.physical_shape slots.(a.Program.slot).Program.layout in
  let strides = Shape.strides phys in
  let total = ref (Some 0) in
  Array.iteri
    (fun i e ->
      match (!total, Ixexpr.coeff_of e v) with
      | Some t, Some c -> total := Some (t + (c * strides.(i)))
      | _ -> total := None)
    a.Program.idx;
  !total

(* Approximate footprint (bytes) an access sweeps over the given loops:
   4 bytes times the extent of every loop the access depends on. *)
let footprint slots (a : Program.access) (loops : Program.loop list) =
  let b = ref 4.0 in
  List.iter
    (fun (l : Program.loop) ->
      match stride_of slots a l.Program.v with
      | Some 0 -> ()
      | Some _ | None -> b := !b *. float_of_int l.Program.extent)
    loops;
  !b

let extract (machine : Machine.t) (p : Program.t) : float array =
  let slots = p.Program.slots in
  let loops = Program.loops p in
  let reads, writes = Program.accesses p in
  let points = float_of_int (Program.points p) in
  let flops = float_of_int p.Program.flops in
  (* innermost loop (deepest in the first chain) *)
  let rec innermost cur = function
    | Program.For (l, b) -> innermost (Some l) b
    | Program.Block (x :: _) -> innermost cur x
    | _ -> cur
  in
  let inner = innermost None p.Program.body in
  let inner_contig, inner_strided, inner_invariant =
    match inner with
    | None -> (0.0, 0.0, 0.0)
    | Some l ->
        let c = ref 0 and s = ref 0 and i = ref 0 in
        List.iter
          (fun a ->
            match stride_of slots a l.Program.v with
            | Some 0 -> incr i
            | Some 1 -> incr c
            | Some _ | None -> incr s)
          (reads @ writes);
        let n = float_of_int (max 1 (List.length reads + List.length writes)) in
        (float_of_int !c /. n, float_of_int !s /. n, float_of_int !i /. n)
  in
  let vec_loops =
    List.filter (fun (l : Program.loop) -> l.Program.kind = Program.Vectorized) loops
  in
  let vec_extent =
    List.fold_left (fun a (l : Program.loop) -> a * l.Program.extent) 1 vec_loops
  in
  let par_extent =
    List.fold_left
      (fun a (l : Program.loop) ->
        if l.Program.kind = Program.Parallel then a * l.Program.extent else a)
      1 loops
  in
  let unrolled =
    List.exists (fun (l : Program.loop) -> l.Program.kind = Program.Unrolled) loops
  in
  (* total storage touched *)
  let total_bytes =
    Array.fold_left
      (fun acc (s : Program.slot) ->
        acc + (4 * Layout.num_physical_elements s.Program.layout))
      0 slots
  in
  let expansion =
    Array.fold_left
      (fun acc (s : Program.slot) ->
        Float.max acc (Layout.expansion_ratio s.Program.layout))
      1.0 slots
  in
  (* inner-tile footprint: accesses swept by the innermost 3 loops *)
  let inner_band =
    let rec chain acc = function
      | Program.For (l, b) -> chain (l :: acc) b
      | Program.Block (x :: _) -> chain acc x
      | _ -> acc
    in
    let all = chain [] p.Program.body in
    List.filteri (fun i _ -> i < 3) all
  in
  let tile_bytes =
    List.fold_left
      (fun acc a -> acc +. footprint slots a inner_band)
      0.0 (reads @ writes)
  in
  let l1 = float_of_int machine.Machine.l1.Cache.size_bytes in
  let l2 = float_of_int machine.Machine.l2.Cache.size_bytes in
  let n_loads = float_of_int (List.length reads) in
  let n_stores = float_of_int (List.length writes) in
  let depth = float_of_int (List.length loops) in
  let arith_intensity = flops /. Float.max 1.0 (float_of_int total_bytes) in
  [|
    log1p flops;
    log1p points;
    depth;
    n_loads;
    n_stores;
    inner_contig;
    inner_strided;
    inner_invariant;
    (if vec_loops <> [] then 1.0 else 0.0);
    log1p (float_of_int vec_extent);
    float_of_int vec_extent /. float_of_int machine.Machine.lanes;
    log1p (float_of_int par_extent);
    Float.min 1.0 (float_of_int par_extent /. float_of_int machine.Machine.cores);
    (if unrolled then 1.0 else 0.0);
    log1p (float_of_int total_bytes);
    float_of_int total_bytes /. l2;
    log1p tile_bytes;
    tile_bytes /. l1;
    (if tile_bytes <= l1 then 1.0 else 0.0);
    (if tile_bytes <= l2 then 1.0 else 0.0);
    expansion;
    arith_intensity;
    log1p (flops /. Float.max 1.0 points);
    float_of_int (Array.length slots);
  |]
