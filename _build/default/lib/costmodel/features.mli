(** Static program features for the learned cost model: loop structure,
    access contiguity, cache-relative footprints, vectorization and
    parallelism — computable without running the program. *)

module Program = Alt_ir.Program
module Machine = Alt_machine.Machine

val dim : int
(** Feature vector length. *)

val extract : Machine.t -> Program.t -> float array
