lib/costmodel/features.ml: Alt_ir Alt_machine Alt_tensor Array Float List
