lib/costmodel/gbdt.ml: Array Float List
