lib/costmodel/gbdt.mli:
