lib/costmodel/features.mli: Alt_ir Alt_machine
