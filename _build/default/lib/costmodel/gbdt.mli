(** Gradient-boosted regression trees — the XGBoost stand-in for the
    paper's learned cost model (Section 5.2.3). *)

type t

type params = {
  max_depth : int;
  min_samples : int;
  n_trees : int;
  learning_rate : float;
}

val default_params : params

val fit : ?params:params -> float array array -> float array -> t
(** Squared-error boosting of depth-limited trees with shrinkage. *)

val predict : t -> float array -> float

val r2 : t -> float array array -> float array -> float
(** Coefficient of determination on a held-out set. *)
