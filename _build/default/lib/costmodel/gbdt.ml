(* Gradient-boosted regression trees — the XGBoost stand-in of the paper's
   cost model (Section 5.2.3).

   Squared-error boosting over depth-limited regression trees with
   shrinkage.  The tuner trains on (features, log-latency) pairs collected
   from simulator measurements and uses predictions to pick the top-k
   candidates to actually measure. *)

type tree =
  | Leaf of float
  | Node of { feat : int; thresh : float; left : tree; right : tree }

type t = {
  base : float;
  trees : tree list;
  shrinkage : float;
}

type params = {
  max_depth : int;
  min_samples : int;
  n_trees : int;
  learning_rate : float;
}

let default_params =
  { max_depth = 4; min_samples = 4; n_trees = 40; learning_rate = 0.3 }

let rec predict_tree tree (x : float array) =
  match tree with
  | Leaf v -> v
  | Node { feat; thresh; left; right } ->
      if x.(feat) <= thresh then predict_tree left x else predict_tree right x

let predict t x =
  List.fold_left
    (fun acc tree -> acc +. (t.shrinkage *. predict_tree tree x))
    t.base t.trees

let mean a idx =
  if Array.length idx = 0 then 0.0
  else
    Array.fold_left (fun s i -> s +. a.(i)) 0.0 idx
    /. float_of_int (Array.length idx)

let sse a idx =
  let m = mean a idx in
  Array.fold_left (fun s i -> s +. ((a.(i) -. m) ** 2.0)) 0.0 idx

(* Best (feature, threshold) split of [idx] minimizing children SSE. *)
let best_split (xs : float array array) (ys : float array) (idx : int array)
    ~min_samples =
  let nfeat = Array.length xs.(0) in
  let best = ref None in
  let parent_sse = sse ys idx in
  for f = 0 to nfeat - 1 do
    let sorted = Array.copy idx in
    Array.sort (fun a b -> Float.compare xs.(a).(f) xs.(b).(f)) sorted;
    let n = Array.length sorted in
    (* prefix sums for O(n) split evaluation *)
    let psum = Array.make (n + 1) 0.0 and psq = Array.make (n + 1) 0.0 in
    for i = 0 to n - 1 do
      psum.(i + 1) <- psum.(i) +. ys.(sorted.(i));
      psq.(i + 1) <- psq.(i) +. (ys.(sorted.(i)) ** 2.0)
    done;
    for i = min_samples to n - min_samples do
      if xs.(sorted.(i - 1)).(f) < xs.(sorted.(i)).(f) then begin
        let ln = float_of_int i and rn = float_of_int (n - i) in
        let lsum = psum.(i) and rsum = psum.(n) -. psum.(i) in
        let lsq = psq.(i) and rsq = psq.(n) -. psq.(i) in
        let lsse = lsq -. (lsum *. lsum /. ln) in
        let rsse = rsq -. (rsum *. rsum /. rn) in
        let gain = parent_sse -. (lsse +. rsse) in
        let thresh = (xs.(sorted.(i - 1)).(f) +. xs.(sorted.(i)).(f)) /. 2.0 in
        match !best with
        | Some (g, _, _, _) when g >= gain -> ()
        | _ ->
            let li = Array.sub sorted 0 i and ri = Array.sub sorted i (n - i) in
            best := Some (gain, f, thresh, (li, ri))
      end
    done
  done;
  !best

let rec fit_tree xs ys idx ~depth ~params =
  if
    depth >= params.max_depth
    || Array.length idx < 2 * params.min_samples
    || sse ys idx < 1e-10
  then Leaf (mean ys idx)
  else
    match best_split xs ys idx ~min_samples:params.min_samples with
    | None | Some (_, _, _, ([||], _)) | Some (_, _, _, (_, [||])) ->
        Leaf (mean ys idx)
    | Some (gain, feat, thresh, (li, ri)) ->
        if gain <= 1e-12 then Leaf (mean ys idx)
        else
          Node
            {
              feat;
              thresh;
              left = fit_tree xs ys li ~depth:(depth + 1) ~params;
              right = fit_tree xs ys ri ~depth:(depth + 1) ~params;
            }

let fit ?(params = default_params) (xs : float array array) (ys : float array)
    : t =
  if Array.length xs = 0 then
    { base = 0.0; trees = []; shrinkage = params.learning_rate }
  else begin
    let n = Array.length xs in
    let base = mean ys (Array.init n (fun i -> i)) in
    let residual = Array.map (fun y -> y -. base) ys in
    let trees = ref [] in
    let idx = Array.init n (fun i -> i) in
    for _ = 1 to params.n_trees do
      let tree = fit_tree xs residual idx ~depth:0 ~params in
      trees := tree :: !trees;
      Array.iteri
        (fun i _ ->
          residual.(i) <-
            residual.(i) -. (params.learning_rate *. predict_tree tree xs.(i)))
        residual
    done;
    { base; trees = List.rev !trees; shrinkage = params.learning_rate }
  end

(* Coefficient of determination on a held-out set — used in tests. *)
let r2 t xs ys =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let preds = Array.map (predict t) xs in
    let ym = Array.fold_left ( +. ) 0.0 ys /. float_of_int n in
    let ss_res = ref 0.0 and ss_tot = ref 0.0 in
    Array.iteri
      (fun i y ->
        ss_res := !ss_res +. ((y -. preds.(i)) ** 2.0);
        ss_tot := !ss_tot +. ((y -. ym) ** 2.0))
      ys;
    1.0 -. (!ss_res /. Float.max 1e-12 !ss_tot)
  end
