(* Experiment harness entry point.

   Regenerates every table and figure of the paper's evaluation on the
   machine simulator:

     dune exec bench/main.exe            # run everything
     dune exec bench/main.exe -- fig9    # run one experiment
     ALT_BENCH_SCALE=smoke|quick|full    # workload scale (default quick)

   The mapping between these outputs and the paper's numbers is documented
   in EXPERIMENTS.md. *)

let experiments =
  [
    ("fig1", Fig1.run);
    ("table2", Table2.run);
    ("fig9", Fig9.run);
    ("fig10", Fig10.run);
    ("fig11", Fig11.run);
    ("fig12", Fig12.run);
    ("fig13", Fig13.run);
    ("table3", Table3.run);
    ("bechamel", Bechamel_suite.run);
  ]

let () =
  (* strip "--jobs N" (or "-j N") and the fault-injection flags anywhere
     in the argument list; what remains are experiment names *)
  let rec split_args acc = function
    | [] -> List.rev acc
    | ("--jobs" | "-j") :: n :: rest ->
        (Bench_util.jobs :=
           try int_of_string n
           with _ -> Fmt.failwith "--jobs expects an integer, got %S" n);
        split_args acc rest
    | "--fault-rate" :: p :: rest ->
        (Bench_util.fault_rate :=
           try float_of_string p
           with _ -> Fmt.failwith "--fault-rate expects a float, got %S" p);
        split_args acc rest
    | "--fault-seed" :: n :: rest ->
        (Bench_util.fault_seed :=
           try int_of_string n
           with _ -> Fmt.failwith "--fault-seed expects an integer, got %S" n);
        split_args acc rest
    | "--retries" :: n :: rest ->
        (Bench_util.retries :=
           try int_of_string n
           with _ -> Fmt.failwith "--retries expects an integer, got %S" n);
        split_args acc rest
    | (("--jobs" | "-j" | "--fault-rate" | "--fault-seed" | "--retries") as f)
      :: [] ->
        Fmt.failwith "%s expects a value" f
    | a :: rest -> split_args (a :: acc) rest
  in
  let names =
    split_args [] (List.tl (Array.to_list Sys.argv))
  in
  Fmt.pr "ALT experiment harness (scale=%s, jobs=%d)@." Bench_util.scale_name
    (Bench_util.effective_jobs ());
  let requested =
    match names with [] -> List.map fst experiments | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> Bench_util.with_elapsed name f
      | None ->
          Fmt.epr "unknown experiment %S; available: %s@." name
            (String.concat ", " (List.map fst experiments));
          exit 1)
    requested;
  Fmt.pr "@.all requested experiments completed.@."
