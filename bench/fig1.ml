(* Figure 1: C2D and GMM latency under different fixed data layouts
   (NOHW / NHWO / HWON and KN / NK / NKn), with loops tuned per layout.

   Demonstrates the paper's Observation 1: the best layout depends on the
   operator configuration and the platform, and the gap is large. *)

open Alt
open Bench_util

(* (n, i, o, h=w, k, stride) sampled from widely used settings; scaled. *)
let c2d_configs =
  let base =
    [
      (1, 3, 16, 32, 3, 1);
      (1, 16, 32, 28, 3, 1);
      (1, 32, 32, 14, 3, 1);
      (1, 32, 64, 14, 1, 1);
      (1, 64, 64, 7, 3, 1);
      (1, 16, 16, 28, 3, 2);
      (4, 16, 32, 14, 3, 1);
      (1, 8, 96, 14, 1, 1);
      (1, 48, 16, 28, 1, 1);
      (2, 24, 24, 14, 5, 1);
      (1, 64, 32, 14, 3, 2);
      (1, 12, 12, 56, 3, 1);
    ]
  in
  pick ~smoke:(List.filteri (fun i _ -> i < 2) base)
    ~quick:(List.filteri (fun i _ -> i < 8) base)
    ~full:base

let gmm_configs =
  let base =
    [
      (32, 32, 32); (64, 64, 64); (32, 256, 32); (256, 32, 256);
      (128, 128, 128); (64, 512, 64); (48, 48, 192); (16, 1024, 16);
    ]
  in
  pick ~smoke:(List.filteri (fun i _ -> i < 2) base)
    ~quick:(List.filteri (fun i _ -> i < 6) base)
    ~full:base

let loop_budget = pick ~smoke:8 ~quick:24 ~full:64
let max_points = pick ~smoke:5_000 ~quick:20_000 ~full:60_000

let tune_fixed machine op choice =
  let task = Measure.make_task ~faults:(Bench_util.faults ()) ~retries:!Bench_util.retries ~machine ~max_points op in
  let r =
    Tuner.tune_loop_only ~explorer:Tuner.Guided ~budget:loop_budget
      ~layouts:[ choice ] task
  in
  r.Tuner.best_latency

let run_c2d machine =
  Fmt.pr "@.C2D on %a (latency ms; loops tuned per layout, budget %d):@."
    Machine.pp machine loop_budget;
  Fmt.pr "%-4s %-26s %10s %10s %10s   best@." "cfg" "(n,i,o,hw,k,s)" "NOHW"
    "NHWO" "HWON";
  let wins = ref [] in
  List.iteri
    (fun ci (n, i, o, hw, k, s) ->
      let op =
        Ops.c2d
          ~name:(Fmt.str "c2d%d" ci)
          ~inp:"X" ~ker:"K" ~out:"Y" ~n ~i ~o ~h:hw ~w:hw ~kh:k ~kw:k
          ~stride:s ()
      in
      let l_nohw = tune_fixed machine op (Templates.trivial_choice op) in
      let l_nhwo = tune_fixed machine op (Templates.channels_last_choice op) in
      let l_hwon = tune_fixed machine op (Templates.hwon_choice op) in
      let best, bname =
        List.fold_left
          (fun (b, bn) (l, n) -> if l < b then (l, n) else (b, bn))
          (Float.infinity, "?")
          [ (l_nohw, "NOHW"); (l_nhwo, "NHWO"); (l_hwon, "HWON") ]
      in
      let worst = Float.max l_nohw (Float.max l_nhwo l_hwon) in
      wins := (worst /. best) :: !wins;
      Fmt.pr "%-4d (%d,%d,%d,%d,%d,%d)%14s %10.4f %10.4f %10.4f   %s@." ci n
        i o hw k s "" l_nohw l_nhwo l_hwon bname)
    c2d_configs;
  Fmt.pr "geo-mean best/worst layout gap: %.2fx@." (geomean !wins)

let run_gmm machine =
  Fmt.pr "@.GMM on %a (latency ms; loops tuned per layout):@." Machine.pp
    machine;
  Fmt.pr "%-4s %-16s %10s %10s %10s   best@." "cfg" "(m,k,n)" "KN" "NK" "NKn";
  let wins = ref [] in
  List.iteri
    (fun ci (m, k, n) ->
      let op =
        Ops.gmm ~name:(Fmt.str "gmm%d" ci) ~a:"A" ~b:"B" ~out:"C" ~m ~k ~n ()
      in
      let l_kn = tune_fixed machine op (Templates.gmm_kn op) in
      let l_nk = tune_fixed machine op (Templates.gmm_nk op) in
      let l_nkn = tune_fixed machine op (Templates.gmm_nkn op) in
      let best, bname =
        List.fold_left
          (fun (b, bn) (l, nm) -> if l < b then (l, nm) else (b, bn))
          (Float.infinity, "?")
          [ (l_kn, "KN"); (l_nk, "NK"); (l_nkn, "NKn") ]
      in
      let worst = Float.max l_kn (Float.max l_nk l_nkn) in
      wins := (worst /. best) :: !wins;
      Fmt.pr "%-4d (%d,%d,%d)%8s %10.4f %10.4f %10.4f   %s@." ci m k n ""
        l_kn l_nk l_nkn bname)
    gmm_configs;
  Fmt.pr "geo-mean best/worst layout gap: %.2fx@." (geomean !wins)

let run () =
  section "Figure 1: operator latency under different data layouts";
  let ms =
    pick
      ~smoke:[ Machine.intel_cpu ]
      ~quick:[ Machine.intel_cpu; Machine.nvidia_gpu ]
      ~full:[ Machine.intel_cpu; Machine.nvidia_gpu ]
  in
  List.iter
    (fun m ->
      run_c2d m;
      run_gmm m)
    ms
