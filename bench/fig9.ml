(* Figure 9: single-operator benchmark.

   Nine complex, layout-sensitive operators (C2D, GRP, DIL, DEP, C3D, C1D,
   GMM, T2D, T3D) x several configurations x five systems (vendor-library
   stand-in, AutoTVM-like, FlexTensor-like, Ansor-like, ALT) x three
   machine profiles.  Reports per-operator normalized performance (geomean
   of speedups over the worst system per test case, as in the paper) and
   the ALT-vs-baseline speedup summary.  Also prints the tuned o_t values
   to reproduce the Section 7.3.5 observation. *)

open Alt
open Bench_util

let systems =
  [
    Tuner.Vendor; Tuner.Autotvm_like; Tuner.Flextensor_like; Tuner.Ansor_like;
    Tuner.Alt;
  ]

let budget = pick ~smoke:16 ~quick:160 ~full:400
let max_points = pick ~smoke:4_000 ~quick:12_000 ~full:50_000
let n_configs = pick ~smoke:1 ~quick:2 ~full:5

(* configuration generator per operator family; [v]ariants sampled from
   common workload settings (channels from the paper's sampling list). *)
let configs name =
  let all =
    match name with
    | "C2D" ->
        [
          (fun v -> Ops.c2d ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:16
              ~o:32 ~h:28 ~w:28 ~kh:3 ~kw:3 ());
          (fun v -> Ops.c2d ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:3
              ~o:32 ~h:32 ~w:32 ~kh:3 ~kw:3 ());
          (fun v -> Ops.c2d ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:2 ~i:32
              ~o:32 ~h:14 ~w:14 ~kh:3 ~kw:3 ~stride:2 ());
          (fun v -> Ops.c2d ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:64
              ~o:64 ~h:7 ~w:7 ~kh:3 ~kw:3 ());
          (fun v -> Ops.c2d ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:24
              ~o:96 ~h:14 ~w:14 ~kh:1 ~kw:1 ());
        ]
    | "GRP" ->
        [
          (fun v -> Ops.grp ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:32
              ~o:32 ~h:14 ~w:14 ~kh:3 ~kw:3 ~groups:4 ());
          (fun v -> Ops.grp ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:16
              ~o:32 ~h:28 ~w:28 ~kh:3 ~kw:3 ~groups:2 ());
          (fun v -> Ops.grp ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:64
              ~o:64 ~h:7 ~w:7 ~kh:3 ~kw:3 ~groups:8 ());
          (fun v -> Ops.grp ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:2 ~i:24
              ~o:24 ~h:14 ~w:14 ~kh:3 ~kw:3 ~groups:3 ());
          (fun v -> Ops.grp ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:32
              ~o:64 ~h:14 ~w:14 ~kh:5 ~kw:5 ~groups:4 ());
        ]
    | "DIL" ->
        [
          (fun v -> Ops.dil ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:16
              ~o:32 ~h:14 ~w:14 ~kh:3 ~kw:3 ~dilation:2 ());
          (fun v -> Ops.dil ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:32
              ~o:32 ~h:14 ~w:14 ~kh:3 ~kw:3 ~dilation:4 ());
          (fun v -> Ops.dil ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:8
              ~o:64 ~h:28 ~w:28 ~kh:3 ~kw:3 ~dilation:2 ());
          (fun v -> Ops.dil ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:2 ~i:16
              ~o:16 ~h:14 ~w:14 ~kh:5 ~kw:5 ~dilation:2 ());
          (fun v -> Ops.dil ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:48
              ~o:48 ~h:7 ~w:7 ~kh:3 ~kw:3 ~dilation:3 ());
        ]
    | "DEP" ->
        [
          (fun v -> Ops.dep ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~c:32
              ~h:28 ~w:28 ~kh:3 ~kw:3 ());
          (fun v -> Ops.dep ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~c:64
              ~h:14 ~w:14 ~kh:3 ~kw:3 ~stride:2 ());
          (fun v -> Ops.dep ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~c:96
              ~h:14 ~w:14 ~kh:3 ~kw:3 ());
          (fun v -> Ops.dep ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:2 ~c:16
              ~h:28 ~w:28 ~kh:5 ~kw:5 ());
          (fun v -> Ops.dep ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~c:128
              ~h:7 ~w:7 ~kh:3 ~kw:3 ());
        ]
    | "C3D" ->
        [
          (fun v -> Ops.c3d ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:8
              ~o:16 ~d:8 ~h:14 ~w:14 ~kd:3 ~kh:3 ~kw:3 ());
          (fun v -> Ops.c3d ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:3
              ~o:16 ~d:8 ~h:16 ~w:16 ~kd:3 ~kh:3 ~kw:3 ());
          (fun v -> Ops.c3d ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:16
              ~o:32 ~d:4 ~h:7 ~w:7 ~kd:3 ~kh:3 ~kw:3 ());
          (fun v -> Ops.c3d ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:16
              ~o:16 ~d:8 ~h:8 ~w:8 ~kd:1 ~kh:1 ~kw:1 ());
          (fun v -> Ops.c3d ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:2 ~i:8
              ~o:8 ~d:8 ~h:14 ~w:14 ~kd:3 ~kh:3 ~kw:3 ~stride:2 ());
        ]
    | "C1D" ->
        [
          (fun v -> Ops.c1d ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:32
              ~o:64 ~w:64 ~kw:3 ());
          (fun v -> Ops.c1d ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:64
              ~o:64 ~w:32 ~kw:5 ());
          (fun v -> Ops.c1d ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:4 ~i:16
              ~o:32 ~w:64 ~kw:3 ~stride:2 ());
          (fun v -> Ops.c1d ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:8
              ~o:128 ~w:64 ~kw:9 ());
          (fun v -> Ops.c1d ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:128
              ~o:32 ~w:32 ~kw:3 ());
        ]
    | "GMM" ->
        [
          (fun v -> Ops.gmm ~name:v ~a:"A" ~b:"B" ~out:"C" ~m:64 ~k:64 ~n:64 ());
          (fun v -> Ops.gmm ~name:v ~a:"A" ~b:"B" ~out:"C" ~m:32 ~k:256 ~n:32 ());
          (fun v -> Ops.gmm ~name:v ~a:"A" ~b:"B" ~out:"C" ~m:128 ~k:32 ~n:128 ());
          (fun v -> Ops.gmm ~name:v ~a:"A" ~b:"B" ~out:"C" ~m:16 ~k:64 ~n:512 ());
          (fun v -> Ops.gmm ~name:v ~a:"A" ~b:"B" ~out:"C" ~m:96 ~k:96 ~n:96 ());
        ]
    | "T2D" ->
        [
          (fun v -> Ops.t2d ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:32
              ~o:16 ~h:14 ~w:14 ~kh:3 ~kw:3 ());
          (fun v -> Ops.t2d ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:16
              ~o:8 ~h:28 ~w:28 ~kh:3 ~kw:3 ());
          (fun v -> Ops.t2d ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:64
              ~o:32 ~h:7 ~w:7 ~kh:5 ~kw:5 ());
          (fun v -> Ops.t2d ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:2 ~i:24
              ~o:24 ~h:14 ~w:14 ~kh:3 ~kw:3 ());
          (fun v -> Ops.t2d ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:8
              ~o:8 ~h:32 ~w:32 ~kh:3 ~kw:3 ());
        ]
    | "T3D" ->
        [
          (fun v -> Ops.t3d ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:16
              ~o:8 ~d:4 ~h:8 ~w:8 ~kd:3 ~kh:3 ~kw:3 ());
          (fun v -> Ops.t3d ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:8
              ~o:8 ~d:8 ~h:8 ~w:8 ~kd:3 ~kh:3 ~kw:3 ());
          (fun v -> Ops.t3d ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:32
              ~o:16 ~d:4 ~h:7 ~w:7 ~kd:3 ~kh:3 ~kw:3 ());
          (fun v -> Ops.t3d ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:2 ~i:8
              ~o:16 ~d:4 ~h:8 ~w:8 ~kd:1 ~kh:3 ~kw:3 ());
          (fun v -> Ops.t3d ~name:v ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:8
              ~o:32 ~d:4 ~h:8 ~w:8 ~kd:3 ~kh:3 ~kw:3 ());
        ]
    | _ -> assert false
  in
  List.filteri (fun i _ -> i < n_configs) all

let op_families = [ "C2D"; "GRP"; "DIL"; "DEP"; "C3D"; "C1D"; "GMM"; "T2D"; "T3D" ]

(* tuned o_t extraction for the Section 7.3.5 observation *)
let tuned_ot (choice : Propagate.choice) : int option =
  let phys = Layout.physical_shape choice.Propagate.out_layout in
  match Layout.prims choice.Propagate.out_layout with
  | [] -> None
  | _ -> Some phys.(Shape.rank phys - 1)

let run () =
  section "Figure 9: single operator performance (normalized; higher is better)";
  let alt_ots = ref [] in
  List.iter
    (fun machine ->
      Fmt.pr "@.--- %a (budget %d per op/system) ---@." Machine.pp machine
        budget;
      Fmt.pr "%-5s %s@." "op"
        (String.concat "  "
           (List.map (fun s -> Fmt.str "%10s" (Tuner.system_name s)) systems));
      let alt_vs = Hashtbl.create 8 in
      List.iter
        (fun fam ->
          (* accumulate normalized perf per system over the configs *)
          let norm_acc = Hashtbl.create 8 in
          List.iteri
            (fun ci mk ->
              let lats =
                List.map
                  (fun sys ->
                    let op = mk (Fmt.str "%s_%d" fam ci) in
                    let task = Measure.make_task ~faults:(Bench_util.faults ()) ~retries:!Bench_util.retries ~machine ~max_points op in
                    let r =
                      Tuner.tune_op ~jobs:(effective_jobs ()) ~system:sys
                        ~budget task
                    in
                    if sys = Tuner.Alt && machine.Machine.name = "intel-cpu"
                    then
                      Option.iter
                        (fun ot -> alt_ots := (fam, ot) :: !alt_ots)
                        (tuned_ot r.Tuner.best_choice);
                    (Tuner.system_name sys, r.Tuner.best_latency))
                  systems
              in
              let normed = normalize lats in
              List.iter
                (fun (nm, v) ->
                  let prev = try Hashtbl.find norm_acc nm with Not_found -> [] in
                  Hashtbl.replace norm_acc nm (v :: prev))
                normed;
              (* speedups of ALT over each baseline *)
              let alt_lat = List.assoc "alt" lats in
              List.iter
                (fun (nm, l) ->
                  if nm <> "alt" then begin
                    let prev = try Hashtbl.find alt_vs nm with Not_found -> [] in
                    Hashtbl.replace alt_vs nm ((l /. alt_lat) :: prev)
                  end)
                lats)
            (configs fam);
          Fmt.pr "%-5s %s@." fam
            (String.concat "  "
               (List.map
                  (fun s ->
                    let nm = Tuner.system_name s in
                    Fmt.str "%10.3f" (geomean (Hashtbl.find norm_acc nm)))
                  systems)))
        op_families;
      Fmt.pr "@.ALT speedup (geomean) on %a:@." Machine.pp machine;
      Hashtbl.iter
        (fun nm sps -> Fmt.pr "  vs %-12s %.2fx@." nm (geomean sps))
        alt_vs)
    machines;
  if !alt_ots <> [] then begin
    Fmt.pr "@.Section 7.3.5: tuned innermost channel tile o_t on intel-cpu@.";
    Fmt.pr "(vector lanes = 16; the paper observes o_t ~ 2x lanes):@.";
    List.iter (fun (fam, ot) -> Fmt.pr "  %-5s o_t = %d@." fam ot) !alt_ots
  end
