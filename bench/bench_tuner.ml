(* Search-side micro-benchmark: throughput of the tuner's learned-search
   machinery before and after the exact-greedy GBDT rewrite.

   Two levels:
   - micro: [Gbdt.fit_reference] (per-node re-sorting, the seed fitter) vs
     [Gbdt.fit] (presort once, partition down the tree), and per-sample
     [Gbdt.predict] vs [Gbdt.predict_batch] over the flattened trees, on
     feature vectors extracted from real lowered candidates of a conv2d
     tuning space.  The combined fit+rank speedup is the headline number.
   - e2e: one [Tuner.tune_alt] run with the seed search path pinned
     (ALT_GBDT_REFERENCE=1, lowering/feature memo cache off) vs the
     default path, same seed and budget, comparing wall-clock.

   Correctness oracles: predict_batch must agree bitwise with per-sample
   predict (any mismatch aborts), and the two fitters must produce
   bit-identical trees on tie-free continuous data (any mismatch aborts).
   Whether they also agree on the real (tie-containing) schedule features
   is reported as a diagnostic field, not asserted — split sets are
   tie-order-invariant but prefix-sum rounding within tied runs may
   differ, because real knob features are discrete and full of ties
   (see the tie caveat in gbdt.mli and DESIGN.md §10).

   Results go to BENCH_tuner.json so the perf trajectory is tracked
   across PRs.  ALT_BENCH_SCALE=smoke|quick|full controls sizes. *)

open Alt

let scale =
  match Sys.getenv_opt "ALT_BENCH_SCALE" with
  | Some "smoke" -> `Smoke
  | Some "full" -> `Full
  | Some "quick" | None -> `Quick
  | Some s -> Fmt.failwith "unknown ALT_BENCH_SCALE %S" s

let scale_name =
  match scale with `Smoke -> "smoke" | `Quick -> "quick" | `Full -> "full"

let pick ~smoke ~quick ~full =
  match scale with `Smoke -> smoke | `Quick -> quick | `Full -> full

(* 256 training samples / 64-candidate ranking batch is the configuration
   the tuner actually runs at (PR acceptance measures quick scale). *)
let n_train = pick ~smoke:64 ~quick:256 ~full:1024
let n_cands = pick ~smoke:32 ~quick:64 ~full:256
let min_time = pick ~smoke:0.02 ~quick:0.3 ~full:1.0

(* Time [f] for at least [min_time] seconds; returns runs/second. *)
let throughput f =
  f (); (* warm up *)
  let t0 = Unix.gettimeofday () in
  let reps = ref 0 in
  let elapsed = ref 0.0 in
  while !elapsed < min_time do
    f ();
    incr reps;
    elapsed := Unix.gettimeofday () -. t0
  done;
  float_of_int !reps /. !elapsed

(* Feature vectors from real lowered candidates: random points of a
   conv2d loop space at the channels-last layout, exactly what the tuner
   feeds the model. *)
let feature_matrix machine ~n =
  let op =
    Ops.c2d ~name:"conv" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:16 ~o:32 ~h:14
      ~w:14 ~kh:3 ~kw:3 ()
  in
  let task = Measure.make_task ~machine op in
  let choice = Templates.channels_last_choice op in
  let space = Loopspace.of_layout op choice.Propagate.out_layout in
  let rng = Random.State.make [| 0xA17 |] in
  Array.init n (fun _ ->
      let rec draw () =
        let sched = Loopspace.decode space (Loopspace.random_point ~rng space) in
        match Measure.features_of task choice sched with
        | Some f -> f
        | None -> draw ()
      in
      draw ())

(* Deterministic pseudo-latencies with the right shape (log-scale targets,
   correlated with the features): enough for timing and for the
   fit/predict oracles; the e2e section below uses real measurements. *)
let targets xs =
  let d = Array.length xs.(0) in
  let rng = Random.State.make [| 0xBEEF |] in
  let w = Array.init d (fun _ -> Random.State.float rng 1.0 -. 0.5) in
  Array.map
    (fun x ->
      let s = ref 0.0 in
      Array.iteri (fun i v -> s := !s +. (w.(i) *. v)) x;
      Float.log (1.0 +. Float.abs !s))
    xs

type micro = {
  feature_dim : int;
  fit_ref_per_s : float;
  fit_new_per_s : float;
  rank_sample_cps : float; (* candidates/s, per-sample predict *)
  rank_batch_cps : float; (* candidates/s, predict_batch *)
  fitters_identical : bool; (* on real tied features: diagnostic only *)
}

(* Tie-free oracle: continuous random data has no tied feature values
   (probability 0), so here the two fitters are documented bit-identical
   — assert it, don't just report it. *)
let check_fitters_tiefree () =
  let rng = Random.State.make [| 0x71E; 0xF4EE |] in
  let n = n_train and d = 24 in
  let xs =
    Array.init n (fun _ -> Array.init d (fun _ -> Random.State.float rng 1.0))
  in
  let w = Array.init d (fun _ -> Random.State.float rng 1.0 -. 0.5) in
  let ys =
    Array.map
      (fun x ->
        let s = ref 0.0 in
        Array.iteri (fun i v -> s := !s +. (w.(i) *. v)) x;
        !s)
      xs
  in
  if not (Gbdt.equal (Gbdt.fit_reference xs ys) (Gbdt.fit xs ys)) then
    Fmt.failwith
      "exact-greedy fitter diverges from the reference on tie-free data"

let run_micro machine : micro =
  check_fitters_tiefree ();
  let all = feature_matrix machine ~n:(n_train + n_cands) in
  let xs = Array.sub all 0 n_train in
  let cands = Array.sub all n_train n_cands in
  let ys = targets xs in
  let m_ref = Gbdt.fit_reference xs ys in
  let m_new = Gbdt.fit xs ys in
  (* oracle: batch prediction is bitwise the per-sample fold *)
  let per_sample = Array.map (Gbdt.predict m_new) cands in
  let batched = Gbdt.predict_batch m_new cands in
  Array.iteri
    (fun i a ->
      if not (Float.equal a batched.(i)) then
        Fmt.failwith "predict_batch diverges from predict at %d: %h vs %h" i
          a batched.(i))
    per_sample;
  (* sanity: both fitters learn the synthetic relation *)
  let r2_ref = Gbdt.r2 m_ref xs ys and r2_new = Gbdt.r2 m_new xs ys in
  if r2_ref < 0.5 || r2_new < 0.5 then
    Fmt.failwith "fitters underfit the synthetic data: r2 %f / %f" r2_ref
      r2_new;
  let fit_ref_per_s =
    throughput (fun () -> ignore (Gbdt.fit_reference xs ys : Gbdt.t))
  in
  let fit_new_per_s = throughput (fun () -> ignore (Gbdt.fit xs ys : Gbdt.t)) in
  let rank_sample_rps =
    throughput (fun () ->
        ignore (Array.map (Gbdt.predict m_new) cands : float array))
  in
  let rank_batch_rps =
    throughput (fun () ->
        ignore (Gbdt.predict_batch m_new cands : float array))
  in
  {
    feature_dim = Array.length xs.(0);
    fit_ref_per_s;
    fit_new_per_s;
    rank_sample_cps = rank_sample_rps *. float_of_int n_cands;
    rank_batch_cps = rank_batch_rps *. float_of_int n_cands;
    fitters_identical = Gbdt.equal m_ref m_new;
  }

(* One cost-model fit plus one 64-candidate ranking pass — the unit of
   work the tuner repeats every measurement batch. *)
let combined_speedup (m : micro) =
  let old_t = (1.0 /. m.fit_ref_per_s) +. (float_of_int n_cands /. m.rank_sample_cps)
  and new_t = (1.0 /. m.fit_new_per_s) +. (float_of_int n_cands /. m.rank_batch_cps) in
  old_t /. new_t

type e2e = {
  budget : int;
  old_wall : float;
  new_wall : float;
  old_best : float;
  new_best : float;
  ranked_per_s : float; (* features_of calls per second, new path *)
  feat_hits : int;
  feat_misses : int;
}

let run_e2e machine : e2e =
  let budget = pick ~smoke:16 ~quick:60 ~full:150 in
  let op =
    Ops.c2d ~name:"conv" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:8 ~o:16 ~h:8 ~w:8
      ~kh:3 ~kw:3 ()
  in
  let tune task =
    let t0 = Unix.gettimeofday () in
    let r =
      Tuner.tune_alt ~seed:7 ~joint_budget:(budget * 3 / 10)
        ~loop_budget:(budget * 7 / 10) task
    in
    (r, Unix.gettimeofday () -. t0)
  in
  (* seed search path: per-node-sorting fitter, no lowering/feature memo *)
  Unix.putenv "ALT_GBDT_REFERENCE" "1";
  let old_task = Measure.make_task ~machine ~memo:false op in
  let old_r, old_wall = tune old_task in
  Unix.putenv "ALT_GBDT_REFERENCE" "0";
  let new_task = Measure.make_task ~machine op in
  let new_r, new_wall = tune new_task in
  let ls = Measure.lower_stats new_task in
  {
    budget;
    old_wall;
    new_wall;
    old_best = old_r.Tuner.best_latency;
    new_best = new_r.Tuner.best_latency;
    ranked_per_s =
      float_of_int (ls.Measure.feat_hits + ls.Measure.feat_misses) /. new_wall;
    feat_hits = ls.Measure.feat_hits;
    feat_misses = ls.Measure.feat_misses;
  }

let json_of machine (m : micro) (e : e2e) =
  let b = Stdlib.Buffer.create 1024 in
  let add = Stdlib.Buffer.add_string b in
  add "{\n";
  add (Fmt.str "  \"scale\": %S,\n" scale_name);
  add (Fmt.str "  \"machine\": %S,\n" machine.Machine.name);
  add "  \"microbench\": {\n";
  add (Fmt.str "    \"n_train\": %d,\n" n_train);
  add (Fmt.str "    \"n_candidates\": %d,\n" n_cands);
  add (Fmt.str "    \"feature_dim\": %d,\n" m.feature_dim);
  add (Fmt.str "    \"fit_reference_per_s\": %.3f,\n" m.fit_ref_per_s);
  add (Fmt.str "    \"fit_per_s\": %.3f,\n" m.fit_new_per_s);
  add
    (Fmt.str "    \"fit_speedup\": %.3f,\n" (m.fit_new_per_s /. m.fit_ref_per_s));
  add
    (Fmt.str "    \"rank_per_sample_cands_per_s\": %.0f,\n" m.rank_sample_cps);
  add (Fmt.str "    \"rank_batch_cands_per_s\": %.0f,\n" m.rank_batch_cps);
  add
    (Fmt.str "    \"rank_speedup\": %.3f,\n"
       (m.rank_batch_cps /. m.rank_sample_cps));
  add
    (Fmt.str "    \"fit_rank_combined_speedup\": %.3f,\n" (combined_speedup m));
  add (Fmt.str "    \"rank_batch_cutoff\": %d,\n" Gbdt.batch_cutoff);
  add "    \"fitters_identical_tiefree\": true,\n";
  add (Fmt.str "    \"fitters_identical_tied_features\": %b\n" m.fitters_identical);
  add "  },\n";
  add "  \"e2e\": {\n";
  add (Fmt.str "    \"budget\": %d,\n" e.budget);
  add (Fmt.str "    \"old_wall_s\": %.3f,\n" e.old_wall);
  add (Fmt.str "    \"new_wall_s\": %.3f,\n" e.new_wall);
  add (Fmt.str "    \"wall_speedup\": %.3f,\n" (e.old_wall /. e.new_wall));
  add (Fmt.str "    \"old_best_latency_ms\": %.6f,\n" e.old_best);
  add (Fmt.str "    \"new_best_latency_ms\": %.6f,\n" e.new_best);
  add (Fmt.str "    \"candidates_ranked_per_s\": %.1f,\n" e.ranked_per_s);
  add (Fmt.str "    \"feature_cache_hits\": %d,\n" e.feat_hits);
  add (Fmt.str "    \"feature_cache_misses\": %d\n" e.feat_misses);
  add "  }\n";
  add "}\n";
  Stdlib.Buffer.contents b

let () =
  let machine = Machine.intel_cpu in
  Fmt.pr "tuner micro-benchmark (scale=%s, machine=%s)@." scale_name
    machine.Machine.name;
  let m = run_micro machine in
  Fmt.pr "fit   (%d samples x %d feats): ref %8.1f fits/s   new %8.1f fits/s  %6.2fx@."
    n_train m.feature_dim m.fit_ref_per_s m.fit_new_per_s
    (m.fit_new_per_s /. m.fit_ref_per_s);
  Fmt.pr "rank  (%d candidates)       : per-sample %9.0f cands/s   batch %9.0f cands/s  %6.2fx@."
    n_cands m.rank_sample_cps m.rank_batch_cps
    (m.rank_batch_cps /. m.rank_sample_cps);
  Fmt.pr "fit+rank combined speedup   : %.2fx (fitters identical on this data: %b)@."
    (combined_speedup m) m.fitters_identical;
  let e = run_e2e machine in
  Fmt.pr "tune_alt (budget %d)        : old %.2fs   new %.2fs  %5.2fx   best %.4f / %.4f ms@."
    e.budget e.old_wall e.new_wall (e.old_wall /. e.new_wall) e.old_best
    e.new_best;
  Fmt.pr "ranking throughput          : %.1f candidates/s (feature cache %d hits / %d misses)@."
    e.ranked_per_s e.feat_hits e.feat_misses;
  let json = json_of machine m e in
  let oc = open_out "BENCH_tuner.json" in
  output_string oc json;
  close_out oc;
  Fmt.pr "wrote BENCH_tuner.json@."
