(* Shared infrastructure for the experiment harness.

   Every experiment of the paper's evaluation (Figs. 1, 9-13; Tables 2-3)
   has a module here that regenerates its rows on the machine simulator.
   ALT_BENCH_SCALE=smoke|quick|full controls workload sizes and budgets
   (quick is the default; the mapping to the paper's settings is recorded
   in EXPERIMENTS.md). *)

open Alt

type scale = Smoke | Quick | Full

let scale =
  match Sys.getenv_opt "ALT_BENCH_SCALE" with
  | Some "smoke" -> Smoke
  | Some "full" -> Full
  | Some "quick" | None -> Quick
  | Some s -> Fmt.failwith "unknown ALT_BENCH_SCALE %S" s

let scale_name =
  match scale with Smoke -> "smoke" | Quick -> "quick" | Full -> "full"

let pick ~smoke ~quick ~full =
  match scale with Smoke -> smoke | Quick -> quick | Full -> full

(* Measurement parallelism for the tuning drivers.  Defaults from ALT_JOBS;
   bench/main.ml overrides it from a --jobs flag.  0 = all cores.  Tuning
   results are identical for every value (the engine's determinism
   contract); only wall-clock time changes. *)
let jobs =
  ref
    (match Sys.getenv_opt "ALT_JOBS" with
    | Some s -> (try int_of_string (String.trim s) with _ -> 1)
    | None -> 1)

let effective_jobs () =
  if !jobs <= 0 then Pool.default_jobs () else !jobs

(* Fault injection for the tuning drivers (defaults off): environment
   knobs ALT_FAULT_RATE / ALT_FAULT_SEED / ALT_RETRIES, overridden by
   --fault-rate / --fault-seed / --retries in bench/main.ml.  With a
   nonzero rate every experiment runs through the recovery policy of the
   measurement pipeline; the fault pattern is deterministic in the seed. *)
let fault_rate =
  ref
    (match Sys.getenv_opt "ALT_FAULT_RATE" with
    | Some s -> ( try float_of_string (String.trim s) with _ -> 0.0)
    | None -> 0.0)

let fault_seed =
  ref
    (match Sys.getenv_opt "ALT_FAULT_SEED" with
    | Some s -> ( try int_of_string (String.trim s) with _ -> 0)
    | None -> 0)

let retries =
  ref
    (match Sys.getenv_opt "ALT_RETRIES" with
    | Some s -> ( try int_of_string (String.trim s) with _ -> 2)
    | None -> 2)

let faults () =
  if !fault_rate > 0.0 then Fault.create ~seed:!fault_seed ~rate:!fault_rate ()
  else Fault.none

let section title =
  Fmt.pr "@.%s@.%s@." title (String.make (String.length title) '=')

let geomean xs =
  match xs with
  | [] -> 1.0
  | _ ->
      Float.exp
        (List.fold_left (fun a x -> a +. Float.log x) 0.0 xs
        /. float_of_int (List.length xs))

(* Normalized performance as in the paper's bar charts: best latency of the
   row = 1.0, others proportionally lower. *)
let normalize (latencies : (string * float) list) : (string * float) list =
  let best =
    List.fold_left (fun a (_, l) -> Float.min a l) Float.infinity latencies
  in
  List.map (fun (n, l) -> (n, best /. l)) latencies

let pp_row ppf (label, cells) =
  Fmt.pf ppf "%-26s %a@." label
    Fmt.(list ~sep:(any "  ") (fun ppf (n, v) -> Fmt.pf ppf "%s=%.3f" n v))
    cells

let timer = Unix.gettimeofday

let with_elapsed name f =
  let t0 = timer () in
  let r = f () in
  Fmt.pr "@.[%s finished in %.1fs]@." name (timer () -. t0);
  r

(* deterministic machine list per scale *)
let machines =
  pick
    ~smoke:[ Machine.intel_cpu ]
    ~quick:[ Machine.intel_cpu; Machine.nvidia_gpu; Machine.arm_cpu ]
    ~full:[ Machine.intel_cpu; Machine.nvidia_gpu; Machine.arm_cpu ]
