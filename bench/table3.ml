(* Table 3: profiled counters for several layouts of the first ResNet
   layer (padding + C2D + bias + ReLU), scaled.

   Rows: NHWO, NOHW, the blocked N O/ot H W ot, and the joint-tuned ALT
   layout N H/ht W/wt O/ot ht wt ot.  Columns: issued instructions, L1 load
   instructions, L1 misses, L1 store instructions, latency — the paper's
   counters on our machine model. *)

open Alt
open Bench_util

let machine = Machine.intel_cpu
let loop_budget = pick ~smoke:8 ~quick:32 ~full:96
let max_points = pick ~smoke:20_000 ~quick:120_000 ~full:400_000

(* first layer of scaled R18: 3->16 channels, 7x7 window, stride 2 *)
let op =
  Ops.c2d ~name:"r18l0" ~inp:"Inp" ~ker:"Ker" ~out:"Conv" ~n:1 ~i:3 ~o:16
    ~h:16 ~w:16 ~kh:7 ~kw:7 ~stride:2 ()

let fused_chain () =
  [
    Ops.bias_add ~name:"bias" ~inp:"Conv" ~bias:"B" ~out:"Convb"
      ~shape:[| 1; 16; 16; 16 |] ~dim:1 ();
    Ops.relu ~name:"relu" ~inp:"Convb" ~out:"Convr" ~shape:[| 1; 16; 16; 16 |] ();
  ]

let tune_with choice =
  let task = Measure.make_task ~fused:(fused_chain ()) ~faults:(Bench_util.faults ()) ~retries:!Bench_util.retries ~machine ~max_points op in
  let r =
    Tuner.tune_loop_only ~explorer:Tuner.Guided ~budget:loop_budget
      ~layouts:[ choice ] task
  in
  (r.Tuner.best_choice, r.Tuner.best_schedule)

let profile name (choice, schedule) =
  let task = Measure.make_task ~fused:(fused_chain ()) ~faults:(Bench_util.faults ()) ~retries:!Bench_util.retries ~machine ~max_points op in
  match Measure.measure task choice schedule with
  | Measure.Ok r ->
      Fmt.pr "%-28s %10.0f %10.0f %9.0f %9.0f %9.4f@." name r.Profiler.insts
        r.Profiler.loads r.Profiler.l1_misses r.Profiler.stores
        r.Profiler.latency_ms
  | o -> Fmt.pr "%-28s (%a)@." name Measure.pp_outcome o

let run () =
  section "Table 3: profiled counters per layout (pad+C2D+bias+ReLU, scaled R18 layer)";
  Fmt.pr "%-28s %10s %10s %9s %9s %9s@." "Layout (Conv)" "#Inst" "#L1-lds"
    "#L1-mis" "#L1-sts" "Lat(ms)";
  profile "NHWO" (tune_with (Templates.channels_last_choice op));
  profile "NOHW" (tune_with (Templates.trivial_choice op));
  profile "N O/ot H W ot (ot=8)" (tune_with (Templates.blocked_choice op ~block:8));
  (* joint-tuned ALT layout *)
  let task = Measure.make_task ~fused:(fused_chain ()) ~faults:(Bench_util.faults ()) ~retries:!Bench_util.retries ~machine ~max_points op in
  let r =
    Tuner.tune_alt ~joint_budget:(loop_budget * 2) ~loop_budget task
  in
  profile "N H/ht W/wt O/ot ht wt ot" (r.Tuner.best_choice, r.Tuner.best_schedule);
  Fmt.pr
    "@.(paper's shape: NOHW needs the most instructions and loads because@.";
  Fmt.pr
    " it cannot reuse inputs across SIMD channel groups; channel-innermost@.";
  Fmt.pr " layouts [NHWO / blocked / ALT-tiled] cut both, and the best@.";
  Fmt.pr " latency follows the miss counts)@."
