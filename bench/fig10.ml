(* Figure 10: end-to-end inference performance.

   Networks (scaled): ResNet-18, MobileNet-V2, BERT (base/tiny), ResNet3D —
   compiled by six systems: the vendor-compiler stand-in (OpenVINO /
   TensorRT / Torch role), AutoTVM-like, Ansor-like, ALT, and the two
   ablation variants ALT-OL (loop-only, fixed channels-last layouts) and
   ALT-WP (layout tuning without the fusion-enabling propagation). *)

open Alt
open Bench_util

let systems =
  [
    Graph_tuner.Gvendor; Graph_tuner.Gautotvm; Graph_tuner.Gansor;
    Graph_tuner.Galt; Graph_tuner.Galt_ol; Graph_tuner.Galt_wp;
  ]

let budget = pick ~smoke:40 ~quick:160 ~full:600
let tune_points = pick ~smoke:4_000 ~quick:12_000 ~full:40_000
let run_points = pick ~smoke:20_000 ~quick:60_000 ~full:200_000

let models machine =
  let base =
    [
      Zoo.resnet18 ~batch:1 ();
      Zoo.mobilenet_v2 ~batch:1 ();
      Zoo.bert_base ~batch:1 ();
      Zoo.resnet3d_18 ~batch:1 ();
    ]
  in
  let b16 = [ Zoo.resnet18 ~batch:4 (); Zoo.bert_base ~batch:4 () ] in
  match scale with
  | Smoke -> [ Zoo.mobilenet_v2 ~batch:1 ~size:16 () ]
  | Quick -> if machine == Machine.intel_cpu then base else [ List.nth base 0; List.nth base 1 ]
  | Full -> base @ b16

let run () =
  section "Figure 10: end-to-end inference performance";
  Fmt.pr "(latency in simulated ms; budget %d measurements per network)@."
    budget;
  List.iter
    (fun machine ->
      Fmt.pr "@.--- %a ---@." Machine.pp machine;
      List.iter
        (fun (m : Zoo.spec) ->
          let lats =
            List.map
              (fun sys ->
                let tg =
                  Graph_tuner.tune_graph ~faults:(Bench_util.faults ()) ~retries:!Bench_util.retries ~system:sys ~machine ~budget
                    ~max_points:tune_points m.Zoo.graph
                in
                let r = Graph_tuner.run ~max_points:run_points tg ~machine in
                ( Graph_tuner.gsystem_name sys,
                  (r.Compile.latency_ms,
                   tg.Graph_tuner.compiled.Compile.plan.Propagate.conversions,
                   tg.Graph_tuner.compiled.Compile.plan.Propagate.fused_ops) ))
              systems
          in
          Fmt.pr "%-8s@." m.Zoo.name;
          List.iter
            (fun (nm, (l, conv, fused)) ->
              Fmt.pr "  %-10s %9.3f ms   (conversions=%d, fused=%d)@." nm l
                conv fused)
            lats;
          let lat nm = match List.assoc nm lats with l, _, _ -> l in
          Fmt.pr "  ALT speedup: vs ansor %.2fx, vs alt-ol %.2fx, vs alt-wp \
                  %.2fx, vs vendor %.2fx@."
            (lat "ansor" /. lat "alt")
            (lat "alt-ol" /. lat "alt")
            (lat "alt-wp" /. lat "alt")
            (lat "vendor" /. lat "alt"))
        (models machine))
    machines
