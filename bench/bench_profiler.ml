(* Profiler micro-benchmark: throughput of Profiler.run with the
   line-granular fast engine vs the scalar interpreter, on the workload
   shapes the paper tunes (conv2d / matmul / depthwise), at tuned-style
   layout+schedule configurations (channels-last, long contiguous
   innermost loops — the structure ALT's own search converges to).

   For every workload the two engines are also compared counter-by-counter
   (the differential oracle); any mismatch aborts the benchmark.  Results
   go to BENCH_profiler.json so the perf trajectory is tracked across PRs.

   ALT_BENCH_SCALE=smoke|quick|full controls sizes and repetitions;
   ALT_FAST_SIM=0 force-disables the fast engine (the reported speedup
   then degenerates to ~1, making the knob's effect visible). *)

open Alt

let scale =
  match Sys.getenv_opt "ALT_BENCH_SCALE" with
  | Some "smoke" -> `Smoke
  | Some "full" -> `Full
  | Some "quick" | None -> `Quick
  | Some s -> Fmt.failwith "unknown ALT_BENCH_SCALE %S" s

let scale_name =
  match scale with `Smoke -> "smoke" | `Quick -> "quick" | `Full -> "full"

let pick ~smoke ~quick ~full =
  match scale with `Smoke -> smoke | `Quick -> quick | `Full -> full

type workload = {
  wname : string;
  op : Opdef.t;
  choice : Propagate.choice;
  schedule : Schedule.t;
}

(* Tuned-style schedule: a large tile on the innermost physical dimension,
   reductions hoisted outside the inner band (register blocking), inner
   band vectorized — the shape ALT's joint search converges to and the
   fast engine batches best. *)
let tuned_schedule ~rank ~nred ~tile =
  Schedule.default ~rank ~nred
  |> (fun s -> Schedule.split s ~dim:(rank - 1) ~inner:tile)
  |> (fun s -> Schedule.reorder_reduce_outer s true)
  |> Schedule.vectorize

let conv2d ~i ~o ~hw =
  let op =
    Ops.c2d ~name:"conv" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i ~o ~h:hw ~w:hw
      ~kh:3 ~kw:3 ()
  in
  {
    wname = Fmt.str "conv2d_%dx%dx%d" i o hw;
    op;
    choice = Templates.channels_last_choice op;
    schedule = tuned_schedule ~rank:4 ~nred:3 ~tile:(min o 32);
  }

let matmul ~m ~k ~n =
  let op = Ops.gmm ~name:"matmul" ~a:"A" ~b:"B" ~out:"Y" ~m ~k ~n () in
  {
    wname = Fmt.str "matmul_%dx%dx%d" m k n;
    op;
    choice = Templates.trivial_choice op;
    schedule = tuned_schedule ~rank:2 ~nred:1 ~tile:(min n 64);
  }

let depthwise ~c ~hw =
  let op =
    Ops.dep ~name:"dw" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~c ~h:hw ~w:hw ~kh:3
      ~kw:3 ()
  in
  {
    wname = Fmt.str "depthwise_%dx%d" c hw;
    op;
    choice = Templates.trivial_choice op;
    schedule = tuned_schedule ~rank:4 ~nred:2 ~tile:(min hw 32);
  }

let workloads =
  pick
    ~smoke:
      [ conv2d ~i:8 ~o:16 ~hw:8; matmul ~m:16 ~k:32 ~n:32;
        depthwise ~c:8 ~hw:8 ]
    ~quick:
      [ conv2d ~i:32 ~o:32 ~hw:14; conv2d ~i:16 ~o:64 ~hw:28;
        matmul ~m:64 ~k:128 ~n:128; matmul ~m:128 ~k:64 ~n:256;
        depthwise ~c:32 ~hw:28 ]
    ~full:
      [ conv2d ~i:64 ~o:64 ~hw:28; conv2d ~i:32 ~o:128 ~hw:28;
        matmul ~m:128 ~k:256 ~n:256; matmul ~m:256 ~k:128 ~n:512;
        depthwise ~c:64 ~hw:56 ]

let min_time = pick ~smoke:0.02 ~quick:0.3 ~full:1.0

(* Time [f] for at least [min_time] seconds; returns runs/second. *)
let throughput f =
  f (); (* warm up *)
  let t0 = Unix.gettimeofday () in
  let reps = ref 0 in
  let elapsed = ref 0.0 in
  while !elapsed < min_time do
    f ();
    incr reps;
    elapsed := Unix.gettimeofday () -. t0
  done;
  float_of_int !reps /. !elapsed

let counters_of (r : Profiler.result) =
  [
    ("insts", r.Profiler.insts); ("loads", r.Profiler.loads);
    ("stores", r.Profiler.stores); ("flops", r.Profiler.flops);
    ("l1_accesses", r.Profiler.l1_accesses);
    ("l1_misses", r.Profiler.l1_misses); ("l2_misses", r.Profiler.l2_misses);
    ("scale", r.Profiler.scale);
  ]

(* Differential oracle: the two engines must agree counter-for-counter. *)
let assert_equal w (fast : Profiler.result) (scalar : Profiler.result) =
  List.iter2
    (fun (n, a) (_, b) ->
      if a <> b then
        Fmt.failwith "%s: fast/scalar diverge on %s: %h vs %h" w.wname n a b)
    (counters_of fast) (counters_of scalar);
  if fast.Profiler.sampled <> scalar.Profiler.sampled then
    Fmt.failwith "%s: sampled flag diverges" w.wname

let geomean = function
  | [] -> 1.0
  | xs ->
      Float.exp
        (List.fold_left (fun a x -> a +. Float.log x) 0.0 xs
        /. float_of_int (List.length xs))

type row = {
  rname : string;
  points : float;
  fast_rps : float;
  scalar_rps : float;
  fast_groups : int;
  scalar_groups : int;
}

let bench_workload machine (w : workload) : row =
  let task = Measure.make_task ~machine w.op in
  let prog =
    match Measure.program_of task w.choice w.schedule with
    | Some p -> p
    | None -> Fmt.failwith "%s: workload does not lower" w.wname
  in
  let bufs () = Runtime.alloc_bufs prog ~inputs:task.Measure.feeds in
  (* correctness first: identical counters, and the fast engine must
     actually engage on the hot loop (non-vacuous speedup claim) *)
  let fast_on = Profiler.fast_sim_enabled () in
  let es = Profiler.fresh_engine_stats () in
  let rf =
    Profiler.run ~machine ~fast:fast_on ~engine:es prog ~bufs:(bufs ())
  in
  let rs = Profiler.run ~machine ~fast:false prog ~bufs:(bufs ()) in
  assert_equal w rf rs;
  if fast_on && es.Profiler.fast_groups = 0 then
    Fmt.failwith "%s: fast engine did not engage" w.wname;
  let b = bufs () in
  let fast_rps =
    throughput (fun () ->
        ignore
          (Profiler.run ~machine ~fast:fast_on prog ~bufs:b : Profiler.result))
  in
  let scalar_rps =
    throughput (fun () ->
        ignore
          (Profiler.run ~machine ~fast:false prog ~bufs:b : Profiler.result))
  in
  {
    rname = w.wname;
    points = Measure.program_points prog;
    fast_rps;
    scalar_rps;
    fast_groups = es.Profiler.fast_groups;
    scalar_groups = es.Profiler.scalar_groups;
  }

let json_of_rows machine rows =
  let b = Stdlib.Buffer.create 1024 in
  let add = Stdlib.Buffer.add_string b in
  add "{\n";
  add (Fmt.str "  \"scale\": %S,\n" scale_name);
  add (Fmt.str "  \"machine\": %S,\n" machine.Machine.name);
  add
    (Fmt.str "  \"fast_sim_enabled\": %b,\n" (Profiler.fast_sim_enabled ()));
  add "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      add
        (Fmt.str
           "    {\"name\": %S, \"points\": %.0f, \"fast_runs_per_s\": %.3f, \
            \"scalar_runs_per_s\": %.3f, \"fast_points_per_s\": %.0f, \
            \"scalar_points_per_s\": %.0f, \"speedup\": %.3f, \
            \"fast_groups\": %d, \"scalar_groups\": %d}%s\n"
           r.rname r.points r.fast_rps r.scalar_rps (r.fast_rps *. r.points)
           (r.scalar_rps *. r.points)
           (r.fast_rps /. r.scalar_rps)
           r.fast_groups r.scalar_groups
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  add "  ],\n";
  let speedups = List.map (fun r -> r.fast_rps /. r.scalar_rps) rows in
  let core =
    List.filter_map
      (fun r ->
        let is_core =
          String.length r.rname >= 4
          && (String.sub r.rname 0 4 = "conv" || String.sub r.rname 0 4 = "matm")
        in
        if is_core then Some (r.fast_rps /. r.scalar_rps) else None)
      rows
  in
  add (Fmt.str "  \"geomean_speedup\": %.3f,\n" (geomean speedups));
  add
    (Fmt.str "  \"geomean_speedup_conv_matmul\": %.3f\n" (geomean core));
  add "}\n";
  Stdlib.Buffer.contents b

let () =
  let machine = Machine.intel_cpu in
  Fmt.pr "profiler micro-benchmark (scale=%s, machine=%s, fast default=%b)@."
    scale_name machine.Machine.name
    (Profiler.fast_sim_enabled ());
  let rows = List.map (bench_workload machine) workloads in
  List.iter
    (fun r ->
      Fmt.pr
        "%-22s %10.0f pts  fast %8.1f runs/s  scalar %8.1f runs/s  %6.2fx@."
        r.rname r.points r.fast_rps r.scalar_rps
        (r.fast_rps /. r.scalar_rps))
    rows;
  let speedups = List.map (fun r -> r.fast_rps /. r.scalar_rps) rows in
  Fmt.pr "geomean speedup: %.2fx@." (geomean speedups);
  let json = json_of_rows machine rows in
  let oc = open_out "BENCH_profiler.json" in
  output_string oc json;
  close_out oc;
  Fmt.pr "wrote BENCH_profiler.json@."
