(* End-to-end scheduler benchmark: the repo's first full-model perf
   trajectory.  The whole zoo is tuned twice under one global trial
   budget — once with the legacy static per-task split, once with the
   gradient scheduler plus cross-task cost-model transfer (DESIGN.md
   §14) — and each model's tuned graph is executed for its end-to-end
   latency.  Per-model latency-vs-trials curves from the gradient run
   and the equal-budget comparison go to BENCH_e2e.json; the run is a
   gate: gradient must not lose to static at equal budget
   (static_total / gradient_total >= 1.0).

   ALT_BENCH_SCALE=smoke|quick|full controls the zoo and the budget. *)

open Alt

let pick = Bench_util.pick

let zoo () : (string * Graph.t) list =
  let specs =
    pick
      ~smoke:
        (lazy [ Zoo.resnet18 ~size:8 ~base:4 (); Zoo.bert_tiny () ])
      ~quick:
        (lazy
          [
            Zoo.resnet18 ~size:8 ~base:4 ();
            Zoo.mobilenet_v2 ~size:8 ();
            Zoo.bert_tiny ();
            Zoo.resnet3d_18 ~size:8 ~depth:4 ~base:4 ();
          ])
      ~full:
        (lazy
          [
            Zoo.resnet18 ();
            Zoo.mobilenet_v2 ();
            Zoo.bert_tiny ();
            Zoo.resnet3d_18 ();
          ])
  in
  List.map (fun (s : Zoo.spec) -> (s.Zoo.name, s.Zoo.graph)) (Lazy.force specs)

let max_points = pick ~smoke:2_000 ~quick:8_000 ~full:30_000
let per_task = pick ~smoke:16 ~quick:48 ~full:96

type run = {
  policy : Scheduler.policy;
  report : Scheduler.report;
  models : (string * float) list; (* e2e latency per model, ms *)
  total_ms : float;
}

let tune_zoo ~policy graphs : run =
  let report, tuned =
    Graph_tuner.tune_models ~jobs:(Bench_util.effective_jobs ()) ~max_points
      ~policy ~system:Graph_tuner.Galt ~machine:Machine.intel_cpu
      ~budget:(per_task * List.length (Taskset.of_graphs graphs))
      graphs
  in
  let models =
    List.map
      (fun (name, tg) ->
        let r =
          Graph_tuner.run ~max_points:(4 * max_points) tg
            ~machine:Machine.intel_cpu
        in
        (name, r.Compile.latency_ms))
      tuned
  in
  let total_ms = List.fold_left (fun a (_, l) -> a +. l) 0.0 models in
  { policy; report; models; total_ms }

let json_of_runs (static : run) (gradient : run) ~speedup =
  let b = Stdlib.Buffer.create 4096 in
  let add fmt = Fmt.kstr (Stdlib.Buffer.add_string b) fmt in
  let models r =
    String.concat ",\n"
      (List.map
         (fun (name, l) ->
           Fmt.str "        {\"name\": %S, \"latency_ms\": %.6f}" name l)
         r.models)
  in
  let policy_obj r =
    Fmt.str
      "{\n\
      \      \"spent\": %d, \"picks\": %d, \"eps_picks\": %d,\n\
      \      \"transferred_tasks\": %d, \"total_ms\": %.6f,\n\
      \      \"models\": [\n\
       %s\n\
      \      ]\n\
      \    }"
      r.report.Scheduler.spent r.report.Scheduler.picks
      r.report.Scheduler.eps_picks
      (List.length
         (List.filter
            (fun (t : Scheduler.task_report) -> t.Scheduler.transferred)
            r.report.Scheduler.tasks))
      r.total_ms (models r)
  in
  let curve (m, pts) =
    Fmt.str "    {\"model\": %S, \"points\": [%s]}" m
      (String.concat ", "
         (List.map (fun (t, l) -> Fmt.str "[%d, %.6f]" t l) pts))
  in
  add "{\n  \"bench\": \"e2e\",\n  \"scale\": %S,\n" Bench_util.scale_name;
  add "  \"budget\": %d,\n  \"share\": %d,\n  \"tasks\": %d,\n"
    gradient.report.Scheduler.budget gradient.report.Scheduler.share
    (List.length gradient.report.Scheduler.tasks);
  add "  \"static\": %s,\n" (policy_obj static);
  add "  \"gradient\": %s,\n" (policy_obj gradient);
  add "  \"curves\": [\n%s\n  ],\n"
    (String.concat ",\n" (List.map curve gradient.report.Scheduler.curves));
  add "  \"speedup_static_over_gradient\": %.4f\n}\n" speedup;
  Stdlib.Buffer.contents b

let () =
  let graphs = zoo () in
  Bench_util.section
    (Fmt.str "end-to-end scheduler benchmark (%s scale, %d models)"
       Bench_util.scale_name (List.length graphs));
  let static = tune_zoo ~policy:Scheduler.Static graphs in
  let gradient = tune_zoo ~policy:Scheduler.Gradient graphs in
  List.iter
    (fun r ->
      Fmt.pr "%-10s spent %4d trials in %4d picks: total %.4f ms@."
        (Scheduler.policy_name r.policy)
        r.report.Scheduler.spent r.report.Scheduler.picks r.total_ms;
      List.iter
        (fun (name, l) -> Fmt.pr "  %-16s %.4f ms@." name l)
        r.models)
    [ static; gradient ];
  let speedup = static.total_ms /. gradient.total_ms in
  Fmt.pr "static/gradient latency ratio at equal budget: %.4f@." speedup;
  let json = json_of_runs static gradient ~speedup in
  let oc = open_out "BENCH_e2e.json" in
  output_string oc json;
  close_out oc;
  Fmt.pr "%s" json;
  (* the gate: the gradient scheduler must not lose the zoo total to the
     static split when both spend the same global budget *)
  if not (speedup >= 1.0) then
    Fmt.failwith
      "e2e: gradient total %.4f ms worse than static %.4f ms (ratio %.4f < \
       1.0) at equal budget %d"
      gradient.total_ms static.total_ms speedup gradient.report.Scheduler.budget
