(* Domain-parallel exec benchmark: serial-vs-N-domain wall-clock curves
   for the compiled macro-kernel backend (DESIGN.md §15).

   For each workload the deterministic layout zoo is lowered under one
   fixed schedule whose leading loop is marked [Schedule.parallel], then
   every deduplicated program is measured at each domain count.  The
   JSON records the full wall matrix, per-domain geomean speedups, the
   parallel driver's chunk/fallback counters and the run imbalance, so
   silent serialization (a legality fallback where none is expected)
   fails the bench loudly instead of quietly flattening the curve.

   Gates:
   - fallbacks must be 0 on every workload at every scale — these
     schedules are disjoint by construction, so a fallback is a driver
     regression, not a property of the machine;
   - outputs at [domains = 1] and at the maximum domain count must be
     bit-identical (spot-checked here; the QCheck2 differential suite in
     test_exec.ml is the real proof);
   - at quick/full on a box with >= 4 cores, the macro-bound subset
     (gmm + conv) must clear a 1.5x geomean speedup at 4 domains.  On
     smaller boxes the gate is recorded as skipped — wall-clock speedup
     needs physical cores the container may not have;
   - the exec<->sim rank agreement on the streaming workload must still
     clear the 0.5 Spearman floor under parallel measurement (same
     noise gate as BENCH_crossval.json).

   ALT_BENCH_SCALE=smoke|quick|full controls problem sizes and the
   repeat discipline. *)

open Alt

let scale =
  match Sys.getenv_opt "ALT_BENCH_SCALE" with
  | Some "smoke" -> `Smoke
  | Some "full" -> `Full
  | Some "quick" | None -> `Quick
  | Some s -> Fmt.failwith "unknown ALT_BENCH_SCALE %S" s

let scale_name =
  match scale with `Smoke -> "smoke" | `Quick -> "quick" | `Full -> "full"

let pick ~smoke ~quick ~full =
  match scale with `Smoke -> smoke | `Quick -> quick | `Full -> full

let domain_counts = [| 1; 2; 4 |]
let max_domains = domain_counts.(Array.length domain_counts - 1)
let cores = Domain.recommended_domain_count ()

(* The rank re-check measures at the parallelism the box can actually
   deliver: oversubscribed domains on a small box add scheduling jitter
   that swamps the layout signal the comparison is about. *)
let rank_di =
  let idx = ref 0 in
  Array.iteri (fun i d -> if d <= cores then idx := i) domain_counts;
  !idx

let rank_domains = domain_counts.(rank_di)

(* Layout zoo under one fixed scalar schedule with the leading [npar]
   loops parallel: candidates differ only in memory layout, so the
   speedup curve and the rank comparison are not confounded by loop
   structure. *)
let candidates op ~nred ~npar =
  let rank = Shape.rank op.Opdef.out_shape in
  let sched =
    Schedule.no_vectorize
      (Schedule.parallel (Schedule.default ~rank ~nred) npar)
  in
  List.map (fun choice -> (choice, sched)) (Templates.layout_zoo op)

let dedup_programs task cands =
  cands
  |> List.filter_map (fun (c, s) -> Measure.program_of task c s)
  |> List.fold_left
       (fun (seen, acc) p ->
         let key = Measure.program_key p in
         if List.mem key seen then (seen, acc) else (key :: seen, p :: acc))
       ([], [])
  |> snd |> List.rev

let geomean a =
  if Array.length a = 0 then 1.0
  else
    exp (Array.fold_left (fun s x -> s +. log x) 0.0 a
         /. float_of_int (Array.length a))

let bufs_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun (x : float array) y -> x = y) a b

type row = {
  rname : string;
  n : int;
  macro : bool;  (** counts toward the macro-bound speedup gate *)
  walls : float array array;  (** walls.(di).(prog) median ms *)
  speedups : float array;  (** geomean wall(1)/wall(d) per domain index *)
  fallbacks : int;  (** summed over programs at [max_domains] *)
  chunks : int;  (** summed over programs at [max_domains] *)
  imbalance : float;  (** mean imbalance_pct at [max_domains] *)
  noise : float;  (** re-measurement jitter at [max_domains] *)
  rho : float option;  (** exec<->sim Spearman (streaming workload) *)
}

let bench ~name ~op ~max_points ~nred ~npar ~macro ~with_sim ~repeats =
  let machine = Machine.intel_cpu in
  let task = Measure.make_task ~max_points ~machine op in
  let progs = Array.of_list (dedup_programs task (candidates op ~nred ~npar)) in
  let n = Array.length progs in
  if n = 0 then Fmt.failwith "exec bench %s: empty candidate set" name;
  let cfg d = { Exec.warmup = 1; repeats; clock = Exec.Wall; domains = d } in
  let measure_at d p =
    let bufs = Runtime.alloc_bufs p ~inputs:task.Measure.feeds in
    let w = Exec.measure ~cfg:(cfg d) p ~bufs in
    (w, bufs)
  in
  (* noise estimate: re-measure the first candidate at the domain count
     the row's gate reads (rank check vs speedup curve) *)
  let noise_d = if with_sim then rank_domains else max_domains in
  let noise =
    let a = (fst (measure_at noise_d progs.(0))).Exec.median_ms in
    let b = (fst (measure_at noise_d progs.(0))).Exec.median_ms in
    Float.abs (a -. b) /. Float.max 1e-9 (Float.min a b)
  in
  let walls = Array.map (fun _ -> Array.make n 0.0) domain_counts in
  let fallbacks = ref 0 and chunks = ref 0 and imb = ref 0.0 in
  Array.iteri
    (fun pi p ->
      let serial_bufs = ref [||] in
      Array.iteri
        (fun di d ->
          let w, bufs = measure_at d p in
          walls.(di).(pi) <- w.Exec.median_ms;
          if d = 1 then serial_bufs := bufs
          else if d = max_domains then begin
            if not (bufs_equal !serial_bufs bufs) then
              Fmt.failwith
                "exec bench %s[%d]: outputs differ between 1 and %d domains"
                name pi d;
            fallbacks := !fallbacks + w.Exec.par_fallbacks;
            chunks := !chunks + w.Exec.par_chunks;
            imb := !imb +. w.Exec.imbalance_pct
          end)
        domain_counts)
    progs;
  let speedups =
    Array.map
      (fun di ->
        geomean (Array.init n (fun pi -> walls.(0).(pi) /. walls.(di).(pi))))
      (Array.init (Array.length domain_counts) Fun.id)
  in
  let rho =
    if not with_sim then None
    else begin
      let sims =
        Array.map
          (fun p ->
            let bufs = Runtime.alloc_bufs p ~inputs:task.Measure.feeds in
            let r = Profiler.run ~machine ~max_points ~fast:true p ~bufs in
            if r.Profiler.sampled then
              Fmt.epr
                "  WARNING %s: sim sampled (scale %.1f) — raise max_points@."
                name r.Profiler.scale;
            r.Profiler.latency_ms)
          progs
      in
      Some (Rankcorr.spearman sims walls.(rank_di))
    end
  in
  Array.iteri
    (fun di d ->
      Fmt.epr "  %s d=%d:%s  (geomean speedup %.2fx)@." name d
        (String.concat ""
           (Array.to_list (Array.map (Fmt.str " %8.4f") walls.(di))))
        speedups.(di))
    domain_counts;
  Fmt.epr "%s: n=%d fallbacks=%d chunks=%d imbalance=%.1f%% noise=%.3f%s@."
    name n !fallbacks !chunks
    (!imb /. float_of_int n)
    noise
    (match rho with Some r -> Fmt.str " rho=%.3f" r | None -> "");
  { rname = name; n; macro; walls; speedups; fallbacks = !fallbacks;
    chunks = !chunks; imbalance = !imb /. float_of_int n; noise; rho }

let json_of rows ~macro_speedup ~speedup_gate ~rank_gate =
  let b = Stdlib.Buffer.create 4096 in
  let add fmt = Fmt.kstr (Stdlib.Buffer.add_string b) fmt in
  let farr a =
    String.concat ", "
      (Array.to_list (Array.map (fun x -> Fmt.str "%.6f" x) a))
  in
  add "{\n  \"bench\": \"exec\",\n  \"scale\": %S,\n  \"cores\": %d,\n"
    scale_name cores;
  add "  \"domains\": [%s],\n"
    (String.concat ", "
       (Array.to_list (Array.map string_of_int domain_counts)));
  add "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      add "    {\"name\": %S, \"n\": %d, \"macro\": %b,\n" r.rname r.n r.macro;
      Array.iteri
        (fun di d -> add "     \"wall_ms_d%d\": [%s],\n" d (farr r.walls.(di)))
        domain_counts;
      add "     \"speedup_geomean\": [%s],\n" (farr r.speedups);
      add
        "     \"fallbacks\": %d, \"chunks\": %d, \"imbalance_pct\": %.2f, \
         \"noise\": %.4f%s}%s\n"
        r.fallbacks r.chunks r.imbalance r.noise
        (match r.rho with
        | Some rho ->
            Fmt.str ", \"spearman\": %.4f, \"spearman_at_domains\": %d" rho
              rank_domains
        | None -> "")
        (if i = List.length rows - 1 then "" else ","))
    rows;
  add "  ],\n";
  add "  \"macro_speedup_at_%d_domains\": %.4f,\n" max_domains macro_speedup;
  add "  \"speedup_gate\": %S,\n" speedup_gate;
  add "  \"rank_gate\": %S\n}\n" rank_gate;
  Stdlib.Buffer.contents b

let () =
  let repeats = pick ~smoke:3 ~quick:5 ~full:9 in
  (* streaming workload: also carries the exec<->sim rank re-check *)
  let side = pick ~smoke:512 ~quick:768 ~full:1536 in
  let stream =
    (* a transient load spike can flatten the wall signal while the
       noise probe lands in a quiet window — re-measure a failed rank
       verdict before letting the gate judge *)
    let rec go tries =
      let r =
        bench
          ~name:(Fmt.str "relu_%dx%d" side side)
          ~op:(Ops.relu ~name:"r" ~inp:"X" ~out:"Y" ~shape:[| side; side |] ())
          ~max_points:(8 * side * side) ~nred:0 ~npar:1 ~macro:false
          ~with_sim:true ~repeats
      in
      match r.rho with
      | Some rho when rho <= 0.5 && r.noise <= 0.3 && tries > 1 ->
          Fmt.epr "exec bench %s: rho %.3f below floor — remeasuring@."
            r.rname rho;
          go (tries - 1)
      | _ -> r
    in
    go 3
  in
  (* macro-bound workloads: the 4-domain speedup gate runs over these *)
  let dim = pick ~smoke:48 ~quick:96 ~full:160 in
  let gmm =
    bench
      ~name:(Fmt.str "gmm_%d" dim)
      ~op:(Ops.gmm ~name:"g" ~a:"A" ~b:"B" ~out:"Y" ~m:dim ~k:dim ~n:dim ())
      ~max_points:(8 * dim * dim * dim) ~nred:1 ~npar:1 ~macro:true
      ~with_sim:false ~repeats
  in
  let hw = pick ~smoke:8 ~quick:16 ~full:24 in
  let ch = pick ~smoke:16 ~quick:32 ~full:48 in
  let conv =
    bench
      ~name:(Fmt.str "conv_%dx%d" ch hw)
      ~op:
        (Ops.c2d ~name:"conv" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:ch ~o:ch
           ~h:hw ~w:hw ~kh:3 ~kw:3 ())
      ~max_points:(16 * ch * ch * hw * hw * 9)
      ~nred:3 ~npar:2 ~macro:true ~with_sim:false ~repeats
  in
  let rows = [ stream; gmm; conv ] in
  (* gate 1: silent serialization.  Every schedule here is disjoint by
     construction, so any fallback is a legality-check regression. *)
  List.iter
    (fun r ->
      if r.fallbacks > 0 then
        Fmt.failwith
          "exec bench %s: %d parallel fallback(s) — silent serialization"
          r.rname r.fallbacks;
      if r.chunks = 0 then
        Fmt.failwith "exec bench %s: parallel driver never engaged" r.rname)
    rows;
  (* gate 2: macro-bound speedup at the maximum domain count *)
  let macro_rows = List.filter (fun r -> r.macro) rows in
  let macro_speedup =
    geomean
      (Array.of_list
         (List.map (fun r -> r.speedups.(Array.length r.speedups - 1))
            macro_rows))
  in
  let speedup_gate =
    if scale = `Smoke then
      Fmt.str "skipped: smoke scale (measured %.2fx)" macro_speedup
    else if cores < max_domains then
      Fmt.str "skipped: %d core(s) < %d domains (measured %.2fx)" cores
        max_domains macro_speedup
    else if macro_speedup >= 1.5 then Fmt.str "passed: %.2fx" macro_speedup
    else Fmt.str "FAILED: %.2fx < 1.5x" macro_speedup
  in
  (* gate 3: rank agreement under parallel measurement (streaming row) *)
  let rank_gate =
    match stream.rho with
    | None -> "skipped: no sim row"
    | Some rho ->
        (* wall-side non-vacuity guard (mirrors test_exec.ml): a flat
           wall spread means a cache-thrashing neighbor erased the
           layout signal — skip loudly rather than judge noise *)
        let wspread =
          let w = stream.walls.(rank_di) in
          Array.fold_left Float.max w.(0) w
          /. Float.max 1e-9 (Array.fold_left Float.min w.(0) w)
        in
        if stream.noise > 0.3 then
          Fmt.str "skipped: wall too noisy (%.3f, measured rho %.3f)"
            stream.noise rho
        else if rho > 0.5 then Fmt.str "passed: rho %.3f" rho
        else if wspread < 1.5 then
          Fmt.str
            "skipped: wall spread %.2fx too flat (contended box, measured \
             rho %.3f)"
            wspread rho
        else Fmt.str "FAILED: rho %.3f <= 0.5" rho
  in
  let json = json_of rows ~macro_speedup ~speedup_gate ~rank_gate in
  let oc = open_out "BENCH_exec.json" in
  output_string oc json;
  close_out oc;
  Fmt.pr "%s" json;
  if String.length speedup_gate >= 6 && String.sub speedup_gate 0 6 = "FAILED"
  then
    Fmt.failwith "exec bench: macro speedup gate failed (%s)" speedup_gate;
  if String.length rank_gate >= 6 && String.sub rank_gate 0 6 = "FAILED" then
    Fmt.failwith "exec bench: rank gate failed (%s)" rank_gate;
  Fmt.epr "exec bench: speedup gate %s; rank gate %s@." speedup_gate rank_gate
