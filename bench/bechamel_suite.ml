(* Bechamel micro-benchmarks: one Test per experiment family, measuring the
   compiler substrate itself (transformation, lowering, simulation, cost
   model, PPO) so regressions in the infrastructure are visible next to the
   paper-style tables. *)

open Alt
module B = Bechamel
module Test = Bechamel.Test
module Staged = Bechamel.Staged

let c2d_op () =
  Ops.c2d ~name:"bench" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:16 ~o:32 ~h:14
    ~w:14 ~kh:3 ~kw:3 ()

let alt_choice op =
  let tpl = Option.get (Templates.for_op op) in
  tpl.Templates.decode [| 0.5; 0.5; 0.25; 0.5; 0.5; 0.25 |]

(* Fig.1/Table 3 family: layout transformation (pack through primitives). *)
let test_layout_pack =
  let op = c2d_op () in
  let choice = alt_choice op in
  let inp_layout = List.assoc "X" choice.Propagate.in_layouts in
  let data = Buffer.random (Layout.logical_shape inp_layout) in
  Test.make ~name:"fig1:layout-pack (unfold C2D input)"
    (Staged.stage (fun () -> ignore (Layout.pack inp_layout data : float array)))

(* Fig.2/3 family: access rewriting + lowering through Eq. (1). *)
let test_lowering =
  let op = c2d_op () in
  let choice = alt_choice op in
  let task = Measure.make_task ~machine:Machine.intel_cpu op in
  let rank = Shape.rank (Layout.physical_shape choice.Propagate.out_layout) in
  let sched = Schedule.default ~rank ~nred:3 in
  Test.make ~name:"fig2:lowering (layout-transformed C2D)"
    (Staged.stage (fun () ->
         ignore (Measure.program_of task choice sched : Program.t option)))

(* Table 2 / Fig.9 family: one simulated on-device measurement. *)
let test_measurement =
  let op = c2d_op () in
  let task = Measure.make_task ~machine:Machine.intel_cpu ~max_points:10_000 op in
  let choice = Templates.channels_last_choice op in
  let sched = Schedule.vectorize (Schedule.default ~rank:4 ~nred:3) in
  Test.make ~name:"fig9:simulated measurement (C2D, 10k points)"
    (Staged.stage (fun () ->
         ignore (Measure.measure task choice sched : Measure.outcome)))

(* Fig.10 family: layout propagation planning on a real model graph. *)
let test_propagation =
  let m = Zoo.mobilenet_v2 ~size:16 () in
  let choices = Compile.trivial_choices m.Zoo.graph in
  Test.make ~name:"fig10:propagation plan (MobileNet-V2)"
    (Staged.stage (fun () ->
         ignore (Propagate.plan m.Zoo.graph ~choices : Propagate.plan)))

(* Fig.11 family: one PPO act+update step. *)
let test_ppo_step =
  let agent = Ppo.create ~seed:9 ~state_dim:8 () in
  let state = Array.make 8 0.3 in
  Test.make ~name:"fig11:ppo act+update (batch 8)"
    (Staged.stage (fun () ->
         let batch =
           List.init 8 (fun _ ->
               let a, s = Ppo.act agent state in
               s.Ppo.reward <- -.Float.abs (a -. 0.5);
               s)
         in
         Ppo.update ~epochs:1 agent batch))

(* Fig.12/13 family: conversion-operator execution. *)
let test_conversion =
  let shape = [| 1; 32; 14; 14 |] in
  let src = Layout.create shape in
  let dst =
    Layout.reorder
      (Layout.split (Layout.create shape) ~dim:1 ~factors:[ 4; 8 ])
      [| 0; 1; 3; 4; 2 |]
  in
  let prog = Lower.conversion ~src ~dst () in
  let data = Buffer.random shape in
  Test.make ~name:"fig12:conversion operator (32x14x14)"
    (Staged.stage (fun () ->
         let bufs =
           [|
             Layout.pack src data;
             Array.make (Layout.num_physical_elements dst) 0.0;
           |]
         in
         ignore (Profiler.run ~machine:Machine.intel_cpu prog ~bufs)))

(* Table 3 family: GBDT cost model fit. *)
let test_gbdt =
  let rng = Random.State.make [| 123 |] in
  let xs =
    Array.init 128 (fun _ -> Array.init 24 (fun _ -> Random.State.float rng 1.0))
  in
  let ys = Array.map (fun x -> x.(0) +. (2.0 *. x.(3)) -. x.(7)) xs in
  Test.make ~name:"table3:gbdt fit (128 samples)"
    (Staged.stage (fun () -> ignore (Gbdt.fit xs ys : Gbdt.t)))

let tests =
  [
    test_layout_pack; test_lowering; test_measurement; test_propagation;
    test_ppo_step; test_conversion; test_gbdt;
  ]

let run () =
  Bench_util.section "Bechamel micro-benchmarks (compiler substrate)";
  let cfg = B.Benchmark.cfg ~limit:300 ~quota:(B.Time.second 0.5) ~kde:None () in
  let instances = B.Toolkit.Instance.[ monotonic_clock ] in
  let ols =
    B.Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| B.Measure.run |]
  in
  List.iter
    (fun test ->
      let results = B.Benchmark.all cfg instances test in
      let analyzed = B.Analyze.all ols B.Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_r ->
          match B.Analyze.OLS.estimates ols_r with
          | Some (est :: _) ->
              Fmt.pr "  %-48s %12.1f ns/run%s@." name est
                (match B.Analyze.OLS.r_square ols_r with
                | Some r2 -> Fmt.str "  (r2=%.3f)" r2
                | None -> "")
          | _ -> Fmt.pr "  %-48s (no estimate)@." name)
        analyzed)
    tests
