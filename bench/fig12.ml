(* Figure 12: the overhead of layout propagation and the necessity of
   Algorithm 1's constraints.

   Subgraphs: padding -> C2D(3x3) -> C2D(1x1), two sizes.  Variants:
   - Ansor      : loop-only tuning, one fixed blocked layout end to end;
   - ALT-FP     : the first C2D's tuned output layout is force-propagated
                  as the second C2D's input layout;
   - ALT-BP     : the second C2D's preferred input layout is forced back
                  onto the first C2D's output;
   - ALT        : both C2Ds tune independently; a conversion operator is
                  inserted between them (the paper's Algorithm 1 behavior).
   Reports the latency decomposition conv1 / conversion / conv2. *)

open Alt
open Bench_util

let machine = Machine.intel_cpu
let loop_budget = pick ~smoke:8 ~quick:24 ~full:64
let max_points = pick ~smoke:5_000 ~quick:20_000 ~full:60_000

type subgraph = { tag : string; n : int; c : int; c2 : int; hw : int }

(* the paper uses 512 channels; 128 keeps the simulation tractable while
   preserving conv >> conversion work *)
let subgraphs =
  [
    { tag = "Sg#1"; n = 1; c = 128; c2 = 128; hw = 7 };
    { tag = "Sg#2"; n = 1; c = 128; c2 = 256; hw = 14 };
  ]

(* the two convolutions of a subgraph *)
let conv_ops (sg : subgraph) =
  let conv1 =
    Ops.c2d ~name:"conv1" ~inp:"xp" ~ker:"k1" ~out:"y1" ~n:sg.n ~i:sg.c
      ~o:sg.c ~h:sg.hw ~w:sg.hw ~kh:3 ~kw:3 ()
  in
  let conv2 =
    Ops.c2d ~name:"conv2" ~inp:"y1" ~ker:"k2" ~out:"y2" ~n:sg.n ~i:sg.c
      ~o:sg.c2 ~h:sg.hw ~w:sg.hw ~kh:1 ~kw:1 ()
  in
  (conv1, conv2)

(* candidate shared layouts: channel-blocked (invertible, so both directions
   of forced propagation are expressible), channels-last, default *)
let candidate_choices (op : Opdef.t) =
  Templates.trivial_choice op
  :: Templates.channels_last_choice op
  :: List.map (fun b -> Templates.blocked_choice op ~block:b) [ 4; 8; 16; 32 ]

(* Loop-tune one conv for each candidate; return (best latency per candidate,
   schedules). *)
let tune_candidates op =
  List.map
    (fun choice ->
      let task = Measure.make_task ~faults:(Bench_util.faults ()) ~retries:!Bench_util.retries ~machine ~max_points op in
      let r =
        Tuner.tune_loop_only ~jobs:(effective_jobs ()) ~explorer:Tuner.Guided
          ~budget:loop_budget ~layouts:[ choice ] task
      in
      (choice, r))
    (candidate_choices op)

let best results =
  List.fold_left
    (fun (bc, (br : Tuner.result)) (c, (r : Tuner.result)) ->
      if r.Tuner.best_latency < br.Tuner.best_latency then (c, r) else (bc, br))
    (List.hd results) (List.tl results)

(* conversion cost between conv1's output layout and conv2's input layout *)
let conversion_cost (src : Layout.t) (dst : Layout.t) shape =
  if Layout.equal src dst then 0.0
  else begin
    let prog = Lower.conversion ~src ~dst () in
    let bufs =
      [|
        Layout.pack src (Buffer.random shape);
        Array.make (Layout.num_physical_elements dst) 0.0;
      |]
    in
    let r = Profiler.run ~machine ~max_points prog ~bufs in
    r.Profiler.latency_ms
  end

(* the input layout conv2 reads y1 in, for a given conv2 choice *)
let y1_layout_of (choice : Propagate.choice) = List.assoc "y1" choice.Propagate.in_layouts

let run () =
  section "Figure 12: layout propagation overhead (pad->C2D3x3->C2D1x1)";
  List.iter
    (fun sg ->
      let conv1, conv2 = conv_ops sg in
      let shape_y1 = [| sg.n; sg.c; sg.hw; sg.hw |] in
      let r1 = tune_candidates conv1 in
      let r2 = tune_candidates conv2 in
      (* candidates of conv1 and conv2 are generated from the same layout
         family list, so index i on one side is "the same layout family" on
         the other: forced propagation = forcing the partner to the family
         of the winner's index. *)
      let best_index results =
        let _, i, _ =
          List.fold_left
            (fun (j, bi, bl) (_, (r : Tuner.result)) ->
              if r.Tuner.best_latency < bl then (j + 1, j, r.Tuner.best_latency)
              else (j + 1, bi, bl))
            (0, 0, Float.infinity) results
        in
        i
      in
      let i1 = best_index r1 and i2 = best_index r2 in
      let c1_best, r1_best = best r1 in
      let c2_best, r2_best = best r2 in
      (* --- ALT: independent bests + conversion operator between --- *)
      let conv_ms =
        conversion_cost c1_best.Propagate.out_layout (y1_layout_of c2_best)
          shape_y1
      in
      (* --- ALT-FP: conv2 forced to conv1's layout family --- *)
      let fp =
        let _, r2f = List.nth r2 i1 in
        (r1_best.Tuner.best_latency, 0.0, r2f.Tuner.best_latency)
      in
      (* --- ALT-BP: conv1 forced to conv2's layout family --- *)
      let bp =
        let _, r1b = List.nth r1 i2 in
        (r1b.Tuner.best_latency, 0.0, r2_best.Tuner.best_latency)
      in
      (* --- Ansor: single fixed blocked layout, loop tuning only --- *)
      let fixed1 = Templates.blocked_choice conv1 ~block:(2 * machine.Machine.lanes) in
      let ansor_r1 =
        List.find
          (fun ((c : Propagate.choice), _) ->
            Layout.equal c.Propagate.out_layout fixed1.Propagate.out_layout)
          r1
      in
      let fixed2 = Templates.blocked_choice conv2 ~block:(2 * machine.Machine.lanes) in
      let ansor_r2 =
        List.find
          (fun ((c : Propagate.choice), _) ->
            Layout.equal c.Propagate.out_layout fixed2.Propagate.out_layout)
          r2
      in
      let show name (l1, cv, l2) =
        Fmt.pr "  %-8s conv1=%8.4f  conversion=%8.4f  conv2=%8.4f  total=%8.4f@."
          name l1 cv l2 (l1 +. cv +. l2)
      in
      Fmt.pr "@.%s (C=%d->%d, HW=%d):@." sg.tag sg.c sg.c2 sg.hw;
      show "Ansor"
        ((snd ansor_r1).Tuner.best_latency, 0.0, (snd ansor_r2).Tuner.best_latency);
      show "ALT-FP" fp;
      show "ALT-BP" bp;
      show "ALT"
        (r1_best.Tuner.best_latency, conv_ms, r2_best.Tuner.best_latency))
    subgraphs;
  Fmt.pr
    "@.(paper's shape: the conversion operator costs little relative to the@.";
  Fmt.pr
    " convolutions, and forcing a shared layout in the wrong direction@.";
  Fmt.pr
    " [FP or BP] loses more than the conversion costs; Ansor's single@.";
  Fmt.pr " fixed layout is the slowest)@."
