(* Figure 13: parameter sensitivity — search space size vs budget.

   Compares one-level layout tiling templates against two-level templates
   at the base budget and at 1.5x the budget, end to end, reproducing the
   paper's finding: with the base budget the smaller one-level space wins;
   the larger space needs more budget to pay off. *)

open Alt
open Bench_util

let base_budget = pick ~smoke:40 ~quick:3600 ~full:8000
let tune_points = pick ~smoke:4_000 ~quick:10_000 ~full:40_000
let run_points = pick ~smoke:20_000 ~quick:60_000 ~full:200_000

let models () =
  match scale with
  | Smoke -> [ Zoo.mobilenet_v2 ~batch:1 ~size:16 () ]
  | Quick -> [ Zoo.mobilenet_v2 ~batch:1 () ]
  | Full ->
      [
        Zoo.resnet18 ~batch:1 (); Zoo.mobilenet_v2 ~batch:1 ();
        Zoo.bert_base ~batch:1 (); Zoo.resnet3d_18 ~batch:1 ();
      ]

let variants =
  [
    ("two-level (1.0x budget)", 2, base_budget);
    ("two-level (1.5x budget)", 2, base_budget * 3 / 2);
    ("one-level (1.0x budget)", 1, base_budget);
  ]

let run () =
  section "Figure 13: template depth vs budget (end-to-end, ALT)";
  let machine = Machine.intel_cpu in
  List.iter
    (fun (m : Zoo.spec) ->
      Fmt.pr "@.%s on %a:@." m.Zoo.name Machine.pp machine;
      let lats =
        List.map
          (fun (name, levels, budget) ->
            let tg =
              Graph_tuner.tune_graph ~faults:(Bench_util.faults ()) ~retries:!Bench_util.retries ~system:Graph_tuner.Galt ~machine ~budget
                ~levels ~max_points:tune_points m.Zoo.graph
            in
            let r = Graph_tuner.run ~max_points:run_points tg ~machine in
            Fmt.pr "  %-26s %9.3f ms@." name r.Compile.latency_ms;
            (name, r.Compile.latency_ms))
          variants
      in
      let one = List.assoc "one-level (1.0x budget)" lats in
      let two = List.assoc "two-level (1.0x budget)" lats in
      Fmt.pr "  one-level advantage at equal budget: %.1f%%@."
        ((two -. one) /. two *. 100.0))
    (models ())
