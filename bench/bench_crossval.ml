(* Cross-validation benchmark: does the cache-model simulator rank
   candidate (layout, schedule) pairs the same way the compiled exec
   backend's wall clock does?

   For each workload a fixed seeded candidate set is lowered once,
   normalized to the exec device's feature set (serial, scalar — the
   sim's parallel speedup and vector-lane scaling have no wall-clock
   counterpart), then measured by both devices.  Spearman rho and
   Kendall tau between the two latency vectors go to BENCH_crossval.json
   so rank agreement is tracked across PRs.

   ALT_BENCH_SCALE=smoke|quick|full controls the problem size, the
   candidate count and the repeat discipline. *)

open Alt

let scale =
  match Sys.getenv_opt "ALT_BENCH_SCALE" with
  | Some "smoke" -> `Smoke
  | Some "full" -> `Full
  | Some "quick" | None -> `Quick
  | Some s -> Fmt.failwith "unknown ALT_BENCH_SCALE %S" s

let scale_name =
  match scale with `Smoke -> "smoke" | `Quick -> "quick" | `Full -> "full"

let pick ~smoke ~quick ~full =
  match scale with `Smoke -> smoke | `Quick -> quick | `Full -> full

(* Candidate generation: the deterministic layout zoo under one fixed
   scalar serial schedule.  Holding the loop structure constant is what
   makes the comparison meaningful: the exec device's wall clock also
   pays per-iteration interpretation overhead the simulator never
   models, so candidates may differ only in what both devices price —
   memory access order (DESIGN.md §12). *)
let candidates op ~nred =
  let rank = Shape.rank op.Opdef.out_shape in
  let sched =
    Schedule.no_vectorize
      (Schedule.parallel (Schedule.default ~rank ~nred) 0)
  in
  List.map (fun choice -> (choice, sched)) (Templates.layout_zoo op)

let dedup_programs task cands =
  cands
  |> List.filter_map (fun (c, s) -> Measure.program_of task c s)
  |> List.fold_left
       (fun (seen, acc) p ->
         let key = Measure.program_key p in
         if List.mem key seen then (seen, acc) else (key :: seen, p :: acc))
       ([], [])
  |> snd |> List.rev

type row = {
  rname : string;
  n : int;
  rho : float;
  tau : float;
  noise : float;
  sim_ms : float array;
  wall_ms : float array;
}

let crossval ~name ~op ~max_points ~nred ~cfg =
  let machine = Machine.intel_cpu in
  let task = Measure.make_task ~max_points ~machine op in
  let progs = dedup_programs task (candidates op ~nred) in
  let wall p =
    let bufs = Runtime.alloc_bufs p ~inputs:task.Measure.feeds in
    (Exec.measure ~cfg p ~bufs).Exec.median_ms
  in
  let sim p =
    let bufs = Runtime.alloc_bufs p ~inputs:task.Measure.feeds in
    let r = Profiler.run ~machine ~max_points ~fast:true p ~bufs in
    if r.Profiler.sampled then
      Fmt.epr "  WARNING %s: sim sampled (scale %.1f) — raise max_points@."
        name r.Profiler.scale;
    r.Profiler.latency_ms
  in
  (* wall-clock noise estimate: re-measure the first candidate *)
  let p0 = List.hd progs in
  let a = wall p0 and b = wall p0 in
  let noise = Float.abs (a -. b) /. Float.max 1e-9 (Float.min a b) in
  let sims = Array.of_list (List.map sim progs) in
  let walls = Array.of_list (List.map wall progs) in
  Array.iteri
    (fun i s ->
      Fmt.epr "  %s[%02d] sim %8.4f ms  wall %8.4f ms@." name i s walls.(i))
    sims;
  let rho = Rankcorr.spearman sims walls in
  let tau = Rankcorr.kendall sims walls in
  Fmt.epr "%s: n=%d rho=%.3f tau=%.3f noise=%.3f@." name (Array.length sims)
    rho tau noise;
  { rname = name; n = Array.length sims; rho; tau; noise;
    sim_ms = sims; wall_ms = walls }

let json_of_rows rows =
  let b = Stdlib.Buffer.create 4096 in
  let add fmt = Fmt.kstr (Stdlib.Buffer.add_string b) fmt in
  let farr a =
    String.concat ", "
      (Array.to_list (Array.map (fun x -> Fmt.str "%.6f" x) a))
  in
  add "{\n  \"bench\": \"crossval\",\n  \"scale\": %S,\n  \"workloads\": [\n"
    scale_name;
  List.iteri
    (fun i r ->
      add
        "    {\"name\": %S, \"n\": %d, \"spearman\": %.4f, \"kendall\": \
         %.4f, \"noise\": %.4f,\n\
        \     \"sim_ms\": [%s],\n\
        \     \"wall_ms\": [%s]}%s\n"
        r.rname r.n r.rho r.tau r.noise (farr r.sim_ms) (farr r.wall_ms)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  add "  ]\n}\n";
  Stdlib.Buffer.contents b

let () =
  let repeats = pick ~smoke:3 ~quick:5 ~full:9 in
  let cfg = { Exec.warmup = 1; repeats; clock = Exec.Wall; domains = 1 } in
  (* streaming workload: miss-dominated on both devices, so layout is
     the first-order cost and rank agreement should be strongest *)
  let side = pick ~smoke:512 ~quick:768 ~full:1536 in
  let stream =
    crossval ~name:(Fmt.str "relu_%dx%d" side side)
      ~op:(Ops.relu ~name:"r" ~inp:"X" ~out:"Y" ~shape:[| side; side |] ())
      ~max_points:(8 * side * side) ~nred:0 ~cfg
  in
  let dim = pick ~smoke:64 ~quick:96 ~full:160 in
  let max_points = 8 * dim * dim * dim in
  let gmm =
    crossval ~name:(Fmt.str "gmm_%d" dim)
      ~op:(Ops.gmm ~name:"g" ~a:"A" ~b:"B" ~out:"Y" ~m:dim ~k:dim ~n:dim ())
      ~max_points ~nred:1 ~cfg
  in
  let hw = pick ~smoke:12 ~quick:16 ~full:24 in
  let ch = pick ~smoke:16 ~quick:32 ~full:48 in
  let conv_op =
    Ops.c2d ~name:"conv" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:ch ~o:ch ~h:hw
      ~w:hw ~kh:3 ~kw:3 ()
  in
  let conv =
    crossval ~name:(Fmt.str "conv_%dx%d" ch hw)
      ~op:conv_op
      ~max_points:(16 * ch * ch * hw * hw * 9)
      ~nred:3 ~cfg
  in
  let rows = [ stream; gmm; conv ] in
  let json = json_of_rows rows in
  let oc = open_out "BENCH_crossval.json" in
  output_string oc json;
  close_out oc;
  Fmt.pr "%s" json;
  (* The bench is also a gate, but only where the two devices share the
     dominant cost: the streaming workload is miss-bound on both sides,
     so layout is the first-order cost for each and rank agreement is
     pinned high.  On gmm/conv at these sizes the simulator's candidate
     spread is under 1% (modeled caches absorb the strides) while the
     exec wall is dominated by per-operation interpreter overhead the
     cache model deliberately omits — their rows are tracked in the
     JSON as diagnostics, not gated. *)
  (* wall-side non-vacuity guard (mirrors test_exec.ml): if a
     cache-thrashing neighbor on a shared host flattens the zoo's wall
     spread, every layout is equally miss-bound and rank agreement is
     noise by construction — skip the floor loudly rather than judge *)
  let wspread =
    let wmin = Array.fold_left Float.min stream.wall_ms.(0) stream.wall_ms in
    let wmax = Array.fold_left Float.max stream.wall_ms.(0) stream.wall_ms in
    wmax /. Float.max 1e-9 wmin
  in
  if stream.noise <= 0.3 && wspread < 1.5 then
    Fmt.epr
      "crossval %s: wall spread %.2fx cannot separate the zoo (contended \
       box) — floor skipped@."
      stream.rname wspread
  else if stream.noise <= 0.3 && not (stream.rho > 0.5) then
    Fmt.failwith "crossval %s: spearman %.3f below pinned floor 0.5"
      stream.rname stream.rho
