(* Figure 11: efficiency of layout tuning methods.

   Tunes the layouts of the first convolution of ResNet-18 (scaled) with
   three search methods — random sampling, PPO without pretraining, PPO
   pretrained on other workloads — and reports the best-so-far latency as a
   function of the measurement budget. *)

open Alt
open Bench_util

let budget = pick ~smoke:24 ~quick:96 ~full:400
let max_points = pick ~smoke:4_000 ~quick:12_000 ~full:40_000
let machine = Machine.intel_cpu

(* the first C2D of (scaled) ResNet-18: large window, stride 2 *)
let target_op () =
  Ops.c2d ~name:"r18c0" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:3 ~o:16 ~h:16
    ~w:16 ~kh:7 ~kw:7 ~stride:2 ()

(* pretraining workloads (a C2D and a GMM, as in Section 6) *)
let pretrain_agent () =
  let agent = Ppo.create ~seed:17 ~state_dim:Tuner.actor_input_dim () in
  (* representative workloads, including a small-channel strided stem conv
     from the same family as the target (the paper pretrains on C2D and
     GMM workloads drawn from the evaluation distribution) *)
  let workloads =
    [
      Measure.make_task ~faults:(Bench_util.faults ()) ~retries:!Bench_util.retries ~machine ~max_points
        (Ops.c2d ~name:"pre1" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:3 ~o:8
           ~h:12 ~w:12 ~kh:5 ~kw:5 ~stride:2 ());
      Measure.make_task ~faults:(Bench_util.faults ()) ~retries:!Bench_util.retries ~machine ~max_points
        (Ops.c2d ~name:"pre2" ~inp:"X" ~ker:"K" ~out:"Y" ~n:1 ~i:16 ~o:32
           ~h:14 ~w:14 ~kh:3 ~kw:3 ());
      Measure.make_task ~faults:(Bench_util.faults ()) ~retries:!Bench_util.retries ~machine ~max_points
        (Ops.gmm ~name:"pre3" ~a:"A" ~b:"B" ~out:"C" ~m:64 ~k:64 ~n:64 ());
    ]
  in
  let pre_budget = pick ~smoke:16 ~quick:48 ~full:200 in
  List.iter
    (fun task ->
      ignore
        (Tuner.tune_alt ~seed:17 ~layout_explorer:(`Ppo agent)
           ~seed_layouts:false ~joint_budget:pre_budget ~loop_budget:0 task))
    workloads;
  agent

let best_at history checkpoints =
  List.map
    (fun b ->
      let best =
        List.fold_left
          (fun acc (spent, l) -> if spent <= b then Float.min acc l else acc)
          Float.infinity history
      in
      (b, best))
    checkpoints

let run () =
  section "Figure 11: layout tuning efficiency (Random vs PPO vs PPO-pretrained)";
  let checkpoints =
    List.filter (fun c -> c <= budget) [ budget / 8; budget / 4; budget / 2; (budget * 3) / 4; budget ]
  in
  (* average best-so-far curves over several seeds; single runs of a
     12-proposal search are lottery tickets *)
  let seeds = [ 3; 7; 11 ] in
  let run_method name mk_explorer =
    let runs =
      List.map
        (fun seed ->
          let task = Measure.make_task ~faults:(Bench_util.faults ()) ~retries:!Bench_util.retries ~machine ~max_points (target_op ()) in
          let r =
            Tuner.tune_alt ~seed ~layout_explorer:(mk_explorer seed)
              ~seed_layouts:false ~joint_budget:budget ~loop_budget:0 task
          in
          (r, best_at r.Tuner.history checkpoints))
        seeds
    in
    let curves = List.map snd runs in
    let avg =
      List.map
        (fun c ->
          ( fst c,
            geomean
              (List.map
                 (fun curve -> snd (List.find (fun (b, _) -> b = fst c) curve))
                 curves) ))
        (List.hd curves)
    in
    let final = geomean (List.map (fun (r : Tuner.result * _) -> (fst r).Tuner.best_latency) runs) in
    (name, final, avg, List.map fst runs)
  in
  let results =
    [
      run_method "Random" (fun _ -> `Random);
      run_method "PPO-woPret" (fun _ -> `Ppo_fresh);
      run_method "PPO-Pret" (fun _ -> `Ppo (pretrain_agent ()));
    ]
  in
  Fmt.pr "geomean best-so-far latency (ms) over %d seeds:@."
    (List.length seeds);
  Fmt.pr "%-12s %s@." "method"
    (String.concat " "
       (List.map (fun c -> Fmt.str "%9s" (Fmt.str "@%d" c)) checkpoints));
  List.iter
    (fun (name, _, curve, _) ->
      Fmt.pr "%-12s %s@." name
        (String.concat " "
           (List.map (fun (_, l) -> Fmt.str "%9.4f" l) curve)))
    results;
  (* budget needed by each method to reach Random's final quality *)
  (match results with
  | [ (_, rnd_final, _, _); _; _ ] ->
      let threshold = rnd_final *. 1.05 in
      let reach (rs : Tuner.result list) =
        let per =
          List.filter_map
            (fun (r : Tuner.result) ->
              Option.map fst
                (List.find_opt (fun (_, l) -> l <= threshold) r.Tuner.history))
            rs
        in
        if List.length per < List.length rs then None
        else
          Some
            (List.fold_left ( + ) 0 per / List.length per)
      in
      Fmt.pr
        "@.mean budget to reach within 5%% of Random's final latency (%.4f \
         ms):@."
        rnd_final;
      List.iter
        (fun (nm, _, _, rs) ->
          match reach rs with
          | Some b -> Fmt.pr "  %-12s %d measurements@." nm b
          | None -> Fmt.pr "  %-12s not always reached@." nm)
        results
  | _ -> ())
