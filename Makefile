# Tier-1 gate: everything builds, every test suite passes.
.PHONY: all check test bench bench-profiler bench-profiler-smoke \
	bench-tuner bench-tuner-smoke fault-smoke obs-smoke exec-smoke \
	serve-smoke relation-smoke bench-crossval bench-crossval-smoke \
	bench-exec bench-exec-smoke bench-e2e bench-e2e-smoke clean

all:
	dune build @all

test:
	dune runtest

# Tier-2 gate: a tuning run under 30% injected measurement faults must
# complete with a finite best latency and a best schedule that lowers
# (the CLI exits non-zero otherwise).
fault-smoke:
	dune exec bin/alt_cli.exe -- tune-op --op c2d --channels 4 \
	  --out-channels 8 --spatial 6 --budget 24 --seed 1 \
	  --fault-rate 0.3 --fault-seed 1 --retries 2

# fast-engine micro-benchmark: times Profiler.run under both engines,
# re-checks the fast==scalar differential oracle, writes
# BENCH_profiler.json (ALT_BENCH_SCALE=smoke|quick|full; ALT_FAST_SIM=0
# to pin the scalar engine)
bench-profiler:
	dune exec bench/bench_profiler.exe

bench-profiler-smoke:
	ALT_BENCH_SCALE=smoke dune exec bench/bench_profiler.exe

# search-side micro-benchmark: times GBDT fitting (per-node re-sort vs
# presort-and-partition) and candidate ranking (per-sample vs batched
# prediction), plus an old-vs-new tune_alt wall-clock comparison
# (ALT_GBDT_REFERENCE=1 pins the seed fitter), writes BENCH_tuner.json
bench-tuner:
	dune exec bench/bench_tuner.exe

bench-tuner-smoke:
	ALT_BENCH_SCALE=smoke dune exec bench/bench_tuner.exe

# Observability gate: a traced+metered tuning run must emit a trace the
# validator accepts (seq/timestamps/span nesting) and a well-formed
# metrics snapshot (DESIGN.md §11); obs-validate exits non-zero otherwise.
obs-smoke:
	dune exec bin/alt_cli.exe -- tune-op --op c2d --channels 4 \
	  --out-channels 8 --spatial 6 --budget 24 --seed 1 --jobs 2 \
	  --trace _build/obs_smoke.trace.jsonl \
	  --metrics _build/obs_smoke.metrics.json
	dune exec bin/alt_cli.exe -- obs-validate \
	  --trace _build/obs_smoke.trace.jsonl \
	  --metrics _build/obs_smoke.metrics.json

# Serve gate: a pipe-mode daemon must admit 3 concurrent sessions, shed
# the overflow with structured rejections, survive an injected crash
# (exit 42) and, restarted on the same journal, recover the interrupted
# sessions to byte-identical results (DESIGN.md §13).
serve-smoke:
	dune build bin/alt_cli.exe
	sh scripts/serve_smoke.sh

# Exec-backend gate: a tuning run measured by compiled kernels on the
# wall clock must complete with a finite best latency and a lowerable
# best schedule (the CLI exits non-zero otherwise).  Wall-clock numbers
# are never asserted against absolute milliseconds here — box speed
# varies; correctness and rank behaviour are covered by test/test_exec.ml
# and bench-crossval, whose gates are ratio floors.
exec-smoke:
	dune exec bin/alt_cli.exe -- tune-op --op gmm --channels 8 \
	  --out-channels 8 --spatial 8 --budget 16 --seed 1 \
	  --backend exec --exec-warmup 1 --exec-repeats 3

# Relation-algebra gate: the QCheck2 round-trip/differential suite for
# the layout relation algebra (DESIGN.md §16) at a reduced chain count.
# ALT_RELATION_COUNT scales every property (default 500 under
# `dune runtest`, 60 here); ALT_LAYOUT_REFERENCE=1 at runtime pins the
# kept-verbatim seed pack/unpack for A/B debugging.
relation-smoke:
	ALT_RELATION_COUNT=60 dune exec test/test_relation.exe

# cross-device validation: measures the layout zoo with both the
# simulator and the exec backend, writes BENCH_crossval.json, and fails
# if the miss-bound streaming workload's Spearman rho drops below the
# pinned floor (ALT_BENCH_SCALE=smoke|quick|full)
bench-crossval:
	dune exec bench/bench_crossval.exe

bench-crossval-smoke:
	ALT_BENCH_SCALE=smoke dune exec bench/bench_crossval.exe

# domain-parallel exec benchmark: measures the layout zoo at 1/2/4
# domains, writes BENCH_exec.json with serial-vs-parallel wall curves,
# and fails on any legality fallback (silent serialization) or — at
# quick/full on a >= 4 core box — if the macro-bound geomean speedup at
# 4 domains drops below 1.5x; also re-checks the exec<->sim Spearman
# floor under parallel measurement (ALT_BENCH_SCALE=smoke|quick|full)
bench-exec:
	dune exec bench/bench_exec.exe

bench-exec-smoke:
	ALT_BENCH_SCALE=smoke dune exec bench/bench_exec.exe

# end-to-end scheduler benchmark: tunes the zoo twice at equal global
# budget (static split vs gradient scheduler + cost-model transfer),
# writes BENCH_e2e.json with per-model latency-vs-trials curves, and
# fails if gradient loses the zoo total to static
# (ALT_BENCH_SCALE=smoke|quick|full)
bench-e2e:
	dune exec bench/bench_e2e.exe

bench-e2e-smoke:
	ALT_BENCH_SCALE=smoke dune exec bench/bench_e2e.exe

check: all test relation-smoke bench-profiler-smoke bench-tuner-smoke \
	fault-smoke obs-smoke exec-smoke serve-smoke bench-crossval-smoke \
	bench-exec-smoke bench-e2e-smoke

# quick-scale regeneration of the paper's tables and figures
bench:
	dune exec bench/main.exe

clean:
	dune clean
