# Tier-1 gate: everything builds, every test suite passes.
.PHONY: all check test bench clean

all:
	dune build @all

test:
	dune runtest

check: all test

# quick-scale regeneration of the paper's tables and figures
bench:
	dune exec bench/main.exe

clean:
	dune clean
