(* The paper's motivating example (Section 2, Figs. 2 & 3): a layout that
   tiles the spatial dimensions of a convolution with *overlaps* via the
   unfold primitive, outside the space any blocked-layout system covers.

   Run with:  dune exec examples/overlapped_tiling.exe

   Builds the overlapped layout by hand with layout primitives, prints the
   reconstructed loop nest (compare with the paper's Fig. 3), and profiles
   it against NOHW, NHWO and the blocked N O/ot H W ot layout — a miniature
   of the paper's Table 3 case study. *)

open Alt

let n, i, o, h, w = (1, 16, 32, 32, 32)
let kh, kw = (3, 3)

let op =
  Ops.c2d ~name:"conv" ~inp:"Inp" ~ker:"Ker" ~out:"Conv" ~n ~i ~o ~h ~w ~kh
    ~kw ()

let machine = Machine.intel_cpu

(* Profile one (choice, schedule) configuration. *)
let profile name (choice : Propagate.choice) schedule =
  let task = Measure.make_task ~machine op in
  match Measure.measure task choice schedule with
  | Measure.Ok r ->
      Fmt.pr "%-34s lat=%8.4f ms  insts=%10.0f  l1-lds=%9.0f  l1-mis=%8.0f@."
        name r.Profiler.latency_ms r.Profiler.insts r.Profiler.loads
        r.Profiler.l1_misses
  | o -> Fmt.pr "%-34s %a@." name Measure.pp_outcome o

let default_sched rank =
  Schedule.default ~rank ~nred:3
  |> Schedule.vectorize
  |> (fun s -> Schedule.reorder_reduce_outer s true)
  |> fun s -> Schedule.parallel s 1

let () =
  Fmt.pr "=== Overlapped tiling (paper Fig. 2/3) ===@.@.";

  (* --- build the Fig. 2 layout with primitives --- *)
  let ht, wt, ot = (h / 2, w / 2, 8) in
  (* output: N 2 2 O/ot H/2 W/2 ot *)
  let out_layout =
    let l = Layout.create [| n; o; h; w |] in
    let l = Layout.split l ~dim:1 ~factors:[ o / ot; ot ] in
    let l = Layout.split l ~dim:3 ~factors:[ 2; ht ] in
    let l = Layout.split l ~dim:5 ~factors:[ 2; wt ] in
    (* N (O/ot) ot 2 ht 2 wt -> N 2 2 O/ot ht wt ot *)
    Layout.reorder l [| 0; 3; 5; 1; 4; 6; 2 |]
  in
  (* input: unfold H and W into overlapping tiles of ht+(KH-1) *)
  let inp_layout =
    let l = Layout.create [| n; i; h + kh - 1; w + kw - 1 |] in
    let l = Layout.unfold l ~dim:2 ~tile:(ht + kh - 1) ~stride:ht in
    let l = Layout.unfold l ~dim:4 ~tile:(wt + kw - 1) ~stride:wt in
    (* N I Ht Bh Wt Bw -> N Ht Wt I Bh Bw *)
    Layout.reorder l [| 0; 2; 4; 1; 3; 5 |]
  in
  let ker_layout =
    let l = Layout.create [| o; i; kh; kw |] in
    let l = Layout.split l ~dim:0 ~factors:[ o / ot; ot ] in
    Layout.reorder l [| 0; 2; 3; 4; 1 |]
  in
  Fmt.pr "input  layout: %a@." Layout.pp inp_layout;
  Fmt.pr "        shape: %a  (expansion %.2fx from overlaps)@."
    Shape.pp
    (Layout.physical_shape inp_layout)
    (Layout.expansion_ratio inp_layout);
  Fmt.pr "output layout: %a@." Layout.pp out_layout;
  Fmt.pr "        shape: %a@.@." Shape.pp (Layout.physical_shape out_layout);

  (* --- show the reconstructed loop nest (compare with Fig. 3) --- *)
  let choice =
    {
      Propagate.out_layout;
      in_layouts = [ ("Inp", inp_layout); ("Ker", ker_layout) ];
    }
  in
  let task = Measure.make_task ~machine op in
  let prog =
    Option.get (Measure.program_of task choice (Schedule.default ~rank:7 ~nred:3))
  in
  Fmt.pr "generated program (cf. paper Fig. 3):@.%a@." Program.pp prog;

  (* --- correctness of this exotic layout --- *)
  let expected = Opdef.reference_eval op task.Measure.feeds in
  let outs, _ = Runtime.run_logical ~machine prog ~inputs:task.Measure.feeds in
  Fmt.pr "correctness vs reference: max |diff| = %.2e@.@."
    (Buffer.max_abs_diff expected (List.assoc "Conv" outs));

  (* --- mini Table 3: profile several layouts under a common schedule --- *)
  Fmt.pr "--- layout comparison (cf. paper Table 3) ---@.";
  profile "NOHW (default)" (Templates.trivial_choice op) (default_sched 4);
  profile "NHWO (channels-last)"
    (Templates.channels_last_choice op)
    (default_sched 4);
  profile "N O/ot H W ot (blocked)"
    (Templates.blocked_choice op ~block:ot)
    (default_sched 5);
  profile "N H/ht W/wt O/ot ht wt ot (ALT)" choice (default_sched 7)
